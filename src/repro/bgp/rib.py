"""Routing Information Bases.

Three structures mirror a real BGP implementation:

* :class:`AdjRibIn` — routes learned from one peer, keyed by prefix.
* :class:`LocRib` — for every prefix, *all* known routes ranked by the
  decision process (position 0 is the best path, position 1 the backup).
  Keeping the full ranked list — rather than only the winner — is exactly
  what the supercharged controller needs to compute backup groups.
* :class:`AdjRibOut` — what has been advertised to one peer, so the
  speaker can suppress duplicate announcements and emit withdraws.

:class:`CompactPeerRib` is the full-DFZ scale companion to
:class:`LocRib`: a multi-peer RIB that stores one int->bitmask dict entry
per integer-coded prefix (:mod:`repro.routes.prefixcodec`) — no
Route/PathAttributes objects, no per-route storage at all — for the
million-route planner pipeline (streaming MRT ingest, sharded group
planning, the scale benches) where the simulator's object-based RIBs
would dominate RSS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.attributes import PathAttributes
from repro.net.addresses import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class RouteSource:
    """Identity of the peer a route was learned from."""

    peer_ip: IPv4Address
    peer_asn: int
    router_id: IPv4Address
    is_ebgp: bool = True


@dataclass(frozen=True)
class Route:
    """One path towards one prefix, as stored in the RIBs."""

    prefix: IPv4Prefix
    attributes: PathAttributes
    source: RouteSource
    learned_at: float = 0.0
    igp_cost: int = 0

    @property
    def next_hop(self) -> IPv4Address:
        """Convenience accessor for the NEXT_HOP attribute."""
        return self.attributes.next_hop

    def replace_attributes(self, attributes: PathAttributes) -> "Route":
        """Copy of the route with different attributes (import policy result)."""
        return Route(
            prefix=self.prefix,
            attributes=attributes,
            source=self.source,
            learned_at=self.learned_at,
            igp_cost=self.igp_cost,
        )


@dataclass(frozen=True)
class RibChange:
    """Outcome of inserting/removing a route in the Loc-RIB for one prefix.

    ``old_best``/``new_best`` capture the winner before and after, while
    ``old_ranking``/``new_ranking`` capture the full ordered lists (what
    Listing 1 consumes to detect backup-group changes).
    """

    prefix: IPv4Prefix
    old_best: Optional[Route]
    new_best: Optional[Route]
    old_ranking: Tuple[Route, ...]
    new_ranking: Tuple[Route, ...]

    @property
    def best_changed(self) -> bool:
        """Whether the best path changed (including appearing/disappearing)."""
        return self.old_best != self.new_best

    @property
    def backup_group_changed(self) -> bool:
        """Whether the (primary, backup) next-hop pair changed."""
        return self._group(self.old_ranking) != self._group(self.new_ranking)

    @staticmethod
    def _group(ranking: Tuple[Route, ...]) -> Tuple[Optional[IPv4Address], ...]:
        return tuple(route.next_hop for route in ranking[:2])


class AdjRibIn:
    """Routes learned from a single peer, keyed by prefix."""

    def __init__(self, peer_ip: IPv4Address) -> None:
        self.peer_ip = peer_ip
        self._routes: Dict[IPv4Prefix, Route] = {}

    def insert(self, route: Route) -> Optional[Route]:
        """Store a route, returning the replaced route if any."""
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return previous

    def remove(self, prefix: IPv4Prefix) -> Optional[Route]:
        """Remove the route for ``prefix``, returning it if present."""
        return self._routes.pop(prefix, None)

    def get(self, prefix: IPv4Prefix) -> Optional[Route]:
        """The route for ``prefix`` learned from this peer, if any."""
        return self._routes.get(prefix)

    def prefixes(self) -> Iterator[IPv4Prefix]:
        """Iterate all prefixes learned from this peer."""
        return iter(self._routes.keys())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes


class AdjRibOut:
    """Routes advertised to a single peer, keyed by prefix."""

    def __init__(self, peer_ip: IPv4Address) -> None:
        self.peer_ip = peer_ip
        self._advertised: Dict[IPv4Prefix, PathAttributes] = {}

    def record_announce(self, prefix: IPv4Prefix, attributes: PathAttributes) -> bool:
        """Record an announcement; returns ``False`` if it is a duplicate."""
        if self._advertised.get(prefix) == attributes:
            return False
        self._advertised[prefix] = attributes
        return True

    def record_withdraw(self, prefix: IPv4Prefix) -> bool:
        """Record a withdraw; returns ``False`` if nothing was advertised."""
        return self._advertised.pop(prefix, None) is not None

    def advertised(self, prefix: IPv4Prefix) -> Optional[PathAttributes]:
        """Attributes last advertised for ``prefix``, if any."""
        return self._advertised.get(prefix)

    def prefixes(self) -> Iterator[IPv4Prefix]:
        """Iterate all currently advertised prefixes."""
        return iter(self._advertised.keys())

    def __len__(self) -> int:
        return len(self._advertised)


class LocRib:
    """All known routes per prefix, kept ranked by the decision process."""

    def __init__(self, ranker: Callable[[Sequence[Route]], List[Route]]) -> None:
        """``ranker`` is a callable ``(routes) -> ordered list`` — usually
        :meth:`repro.bgp.decision.DecisionProcess.rank`."""
        self._ranker = ranker
        self._routes: Dict[IPv4Prefix, List[Route]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def update(self, route: Route) -> RibChange:
        """Insert (or replace, keyed by source peer) a route and re-rank."""
        prefix = route.prefix
        current = self._routes.get(prefix, [])
        old_ranking = tuple(current)
        old_best = current[0] if current else None
        remaining = [r for r in current if r.source.peer_ip != route.source.peer_ip]
        remaining.append(route)
        ranked = self._ranker(remaining)
        self._routes[prefix] = ranked
        new_best = ranked[0] if ranked else None
        return RibChange(prefix, old_best, new_best, old_ranking, tuple(ranked))

    def withdraw(self, prefix: IPv4Prefix, peer_ip: IPv4Address) -> RibChange:
        """Remove the route learned from ``peer_ip`` for ``prefix`` and re-rank."""
        current = self._routes.get(prefix, [])
        old_ranking = tuple(current)
        old_best = current[0] if current else None
        remaining = [r for r in current if r.source.peer_ip != peer_ip]
        ranked = self._ranker(remaining)
        if ranked:
            self._routes[prefix] = ranked
        else:
            self._routes.pop(prefix, None)
        new_best = ranked[0] if ranked else None
        return RibChange(prefix, old_best, new_best, old_ranking, tuple(ranked))

    def withdraw_peer(self, peer_ip: IPv4Address) -> List[RibChange]:
        """Remove every route learned from ``peer_ip`` (session loss)."""
        changes = []
        for prefix in list(self._routes.keys()):
            if any(r.source.peer_ip == peer_ip for r in self._routes[prefix]):
                changes.append(self.withdraw(prefix, peer_ip))
        return changes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def best(self, prefix: IPv4Prefix) -> Optional[Route]:
        """The best path for ``prefix``, if any."""
        routes = self._routes.get(prefix)
        return routes[0] if routes else None

    def ranking(self, prefix: IPv4Prefix) -> Tuple[Route, ...]:
        """All known paths for ``prefix`` in preference order."""
        return tuple(self._routes.get(prefix, ()))

    def backup(self, prefix: IPv4Prefix) -> Optional[Route]:
        """The second-best path (the backup), if any."""
        routes = self._routes.get(prefix, [])
        return routes[1] if len(routes) > 1 else None

    def prefixes(self) -> Iterator[IPv4Prefix]:
        """Iterate all prefixes with at least one path."""
        return iter(self._routes.keys())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes


class CompactPeerRib:
    """Multi-peer RIB over integer-coded prefixes (the scale path).

    Peers are registered once, *best-first*: a prefix's ranking is simply
    the registration-ordered tuple of the peers currently announcing it,
    mirroring the strictly ordered LOCAL_PREF scheme every scenario uses
    (decision-process attributes never reorder providers there).  Storage
    is a single dict mapping each int code to a bitmask of announcing
    peers — one entry per distinct prefix, no per-route object, so a 1M
    two-peer table fits in well under 100 MB of RSS instead of several
    GB.  Rankings are interned per bitmask (with n peers there are at
    most 2^n distinct patterns, in practice a handful), so computing a
    ranking is a dict hit and every equal ranking is the *same* tuple
    object — downstream consumers (the planner's deferral stream, the
    engine's liveness decision) can cache by tuple identity and never
    allocate per prefix.

    The change-shaped outputs (``announce``/``withdraw``/
    ``iter_withdraw_peer``) return ranked next-hop tuples of the shared
    peer :class:`IPv4Address` objects, exactly what
    :class:`~repro.supercharge.planner.RemoteGroupPlanner` keys groups
    by; codes iterate sorted, so downstream consumers stay deterministic.
    """

    def __init__(self) -> None:
        self._peer_ips: List[IPv4Address] = []
        self._peer_index: Dict[IPv4Address, int] = {}
        self._masks: Dict[int, int] = {}  # code -> announcing-peer bitmask
        self._ranking_cache: Dict[int, Tuple[IPv4Address, ...]] = {0: ()}

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def add_peer(self, peer_ip: IPv4Address) -> int:
        """Register a peer (in preference order, best first); returns its
        index.  Re-registering returns the existing index."""
        index = self._peer_index.get(peer_ip)
        if index is not None:
            return index
        index = len(self._peer_ips)
        self._peer_index[peer_ip] = index
        self._peer_ips.append(peer_ip)
        return index

    @property
    def peer_count(self) -> int:
        """Number of registered peers."""
        return len(self._peer_ips)

    def peer_ip(self, index: int) -> IPv4Address:
        """The address of peer ``index``."""
        return self._peer_ips[index]

    def _ranking(self, mask: int) -> Tuple[IPv4Address, ...]:
        ranking = self._ranking_cache.get(mask)
        if ranking is None:
            ranking = tuple(
                self._peer_ips[index]
                for index in range(len(self._peer_ips))
                if mask & (1 << index)
            )
            self._ranking_cache[mask] = ranking
        return ranking

    # ------------------------------------------------------------------
    # Mutation (change-shaped: returns old/new ranked next hops)
    # ------------------------------------------------------------------
    def announce(
        self, code: int, peer: int
    ) -> Tuple[Tuple[IPv4Address, ...], Tuple[IPv4Address, ...]]:
        """Peer ``peer`` announces ``code``; returns (old, new) rankings."""
        old_mask = self._masks.get(code, 0)
        new_mask = old_mask | (1 << peer)
        if new_mask != old_mask:
            self._masks[code] = new_mask
        return self._ranking(old_mask), self._ranking(new_mask)

    def load(self, code: int, peer: int) -> None:
        """Bulk-load ``code`` from peer ``peer`` without computing change
        output (the table-build path: nothing consumes old/new rankings
        there, and skipping them trims build CPU)."""
        self._masks[code] = self._masks.get(code, 0) | (1 << peer)

    def withdraw(
        self, code: int, peer: int
    ) -> Tuple[Tuple[IPv4Address, ...], Tuple[IPv4Address, ...]]:
        """Peer ``peer`` withdraws ``code``; returns (old, new) rankings."""
        old_mask = self._masks.get(code, 0)
        new_mask = old_mask & ~(1 << peer)
        if new_mask != old_mask:
            if new_mask:
                self._masks[code] = new_mask
            else:
                del self._masks[code]
        return self._ranking(old_mask), self._ranking(new_mask)

    def iter_withdraw_peer(
        self, peer: int
    ) -> Iterator[Tuple[int, Tuple[IPv4Address, ...]]]:
        """Withdraw *everything* peer ``peer`` announces (remote session
        loss), yielding ``(code, new_ranking)`` in sorted-code order —
        the input stream of a remote-failure planner flush.  The peer's
        routes drain as the iterator advances; no change-object list is
        ever built."""
        bit = 1 << peer
        masks = self._masks
        cache = self._ranking_cache
        drained = sorted(code for code, mask in masks.items() if mask & bit)
        for code in drained:
            new_mask = masks[code] & ~bit
            if new_mask:
                masks[code] = new_mask
            else:
                del masks[code]
            ranking = cache.get(new_mask)
            if ranking is None:
                ranking = self._ranking(new_mask)
            yield code, ranking

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ranking_of(self, code: int) -> Tuple[IPv4Address, ...]:
        """Ranked distinct next hops currently announcing ``code``.

        Returns an interned tuple (same peer pattern -> same object)."""
        return self._ranking(self._masks.get(code, 0))

    def codes_of_peer(self, peer: int) -> Iterator[int]:
        """Iterate peer ``peer``\'s announced codes in sorted order."""
        bit = 1 << peer
        return iter(sorted(code for code, mask in self._masks.items() if mask & bit))

    @property
    def route_count(self) -> int:
        """Total (prefix, peer) entries."""
        # bin().count over int.bit_count(): the latter is Python 3.10+
        # and this repo supports 3.9.
        return sum(bin(mask).count("1") for mask in self._masks.values())

    @property
    def prefix_count(self) -> int:
        """Distinct prefixes announced by at least one peer (O(1))."""
        return len(self._masks)

    def __len__(self) -> int:
        return len(self._masks)
