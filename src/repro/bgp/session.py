"""BGP session finite-state machine.

A reduced version of the RFC 4271 FSM with the states that matter for the
experiments: Idle → Connect → OpenSent → OpenConfirm → Established, plus
hold-timer expiry and administrative/notification shutdown.  The transport
is abstracted: the owner supplies a ``send`` callable and feeds incoming
messages to :meth:`BgpSession.receive`.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.bgp.messages import (
    BgpMessage,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.net.addresses import IPv4Address
from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import PeriodicProcess


class BgpSessionState(enum.Enum):
    """RFC 4271 session states (Active is folded into Connect)."""

    IDLE = "idle"
    CONNECT = "connect"
    OPEN_SENT = "open_sent"
    OPEN_CONFIRM = "open_confirm"
    ESTABLISHED = "established"


class BgpSession:
    """One BGP adjacency towards a single peer.

    Parameters
    ----------
    sim:
        Simulator used for hold/keepalive timers.
    local_asn, local_router_id:
        Identity advertised in our OPEN.
    peer_ip:
        The peer's address (used only for diagnostics and callbacks).
    send:
        Callable delivering a :class:`BgpMessage` to the peer.
    hold_time:
        Negotiated-down hold time proposed in our OPEN, in seconds.
    connect_delay:
        Simulated TCP establishment delay before the OPEN is sent.
    """

    def __init__(
        self,
        sim: Simulator,
        local_asn: int,
        local_router_id: IPv4Address,
        peer_ip: IPv4Address,
        send: Callable[[BgpMessage], None],
        hold_time: float = 90.0,
        connect_delay: float = 0.01,
        connect_retry: float = 5.0,
    ) -> None:
        self._sim = sim
        self.local_asn = local_asn
        self.local_router_id = local_router_id
        self.peer_ip = peer_ip
        self._send = send
        self.configured_hold_time = hold_time
        self.negotiated_hold_time = hold_time
        self._connect_delay = connect_delay
        self._connect_retry = connect_retry
        self._state = BgpSessionState.IDLE
        self._hold_timer: Optional[EventHandle] = None
        self._keepalive_process: Optional[PeriodicProcess] = None
        self._established_callbacks: List[Callable[["BgpSession"], None]] = []
        self._down_callbacks: List[Callable[["BgpSession", str], None]] = []
        self._update_callbacks: List[Callable[["BgpSession", UpdateMessage], None]] = []
        self.peer_asn: Optional[int] = None
        self.peer_router_id: Optional[IPv4Address] = None
        self.updates_received = 0
        self.updates_sent = 0

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    @property
    def state(self) -> BgpSessionState:
        """Current FSM state."""
        return self._state

    @property
    def is_established(self) -> bool:
        """Whether UPDATEs may be exchanged."""
        return self._state is BgpSessionState.ESTABLISHED

    def on_established(self, callback: Callable[["BgpSession"], None]) -> None:
        """Register a callback fired when the session reaches Established."""
        self._established_callbacks.append(callback)

    def on_down(self, callback: Callable[["BgpSession", str], None]) -> None:
        """Register a callback fired when the session leaves Established."""
        self._down_callbacks.append(callback)

    def on_update(self, callback: Callable[["BgpSession", UpdateMessage], None]) -> None:
        """Register a callback fired for every received UPDATE."""
        self._update_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Administrative events
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Administrative start: begin connecting and send our OPEN."""
        if self._state is not BgpSessionState.IDLE:
            return
        self._state = BgpSessionState.CONNECT
        self._sim.schedule(self._connect_delay, self._send_open, name="bgp-open")

    def stop(self, reason: str = "administrative stop") -> None:
        """Administrative stop: notify the peer and fall back to Idle."""
        if self._state is BgpSessionState.IDLE:
            return
        if self._state is BgpSessionState.ESTABLISHED:
            self._send(NotificationMessage(error_code=6, reason=reason))
        self._tear_down(reason)

    def connection_lost(self, reason: str = "connection lost") -> None:
        """Transport-level failure (link down, peer crash)."""
        if self._state is BgpSessionState.IDLE:
            return
        self._tear_down(reason)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_update(self, update: UpdateMessage) -> None:
        """Send an UPDATE to the peer (only valid once established)."""
        if not self.is_established:
            raise RuntimeError(
                f"session to {self.peer_ip} is {self._state.value}, cannot send updates"
            )
        self.updates_sent += 1
        self._send(update)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, message: BgpMessage) -> None:
        """Feed a message received from the peer into the FSM."""
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            self._handle_update(message)
        elif isinstance(message, NotificationMessage):
            self._tear_down(f"notification from peer: {message.reason}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _send_open(self) -> None:
        if self._state is not BgpSessionState.CONNECT:
            return
        self._send(
            OpenMessage(
                asn=self.local_asn,
                router_id=self.local_router_id,
                hold_time=self.configured_hold_time,
            )
        )
        self._state = BgpSessionState.OPEN_SENT
        self._schedule_connect_retry()

    def _schedule_connect_retry(self) -> None:
        """Re-send our OPEN if the handshake stalls (e.g. the first OPEN was
        lost while the peer's ARP entry was still unresolved)."""

        def retry() -> None:
            if self._state in (BgpSessionState.CONNECT, BgpSessionState.OPEN_SENT):
                self._send(
                    OpenMessage(
                        asn=self.local_asn,
                        router_id=self.local_router_id,
                        hold_time=self.configured_hold_time,
                    )
                )
                self._state = BgpSessionState.OPEN_SENT
                self._schedule_connect_retry()

        self._sim.schedule(self._connect_retry, retry, name=f"bgp-retry:{self.peer_ip}")

    def _handle_open(self, message: OpenMessage) -> None:
        if self._state not in (
            BgpSessionState.CONNECT,
            BgpSessionState.OPEN_SENT,
        ):
            return
        self.peer_asn = message.asn
        self.peer_router_id = message.router_id
        self.negotiated_hold_time = min(self.configured_hold_time, message.hold_time)
        # Re-send our OPEN unconditionally: if ours was lost (e.g. dropped
        # while the peer's L2 address was unresolved) the peer is still
        # waiting for it, and a duplicate OPEN is ignored otherwise.
        self._send(
            OpenMessage(
                asn=self.local_asn,
                router_id=self.local_router_id,
                hold_time=self.configured_hold_time,
            )
        )
        self._send(KeepaliveMessage())
        self._state = BgpSessionState.OPEN_CONFIRM
        self._restart_hold_timer()

    def _handle_keepalive(self) -> None:
        if self._state is BgpSessionState.OPEN_CONFIRM:
            self._state = BgpSessionState.ESTABLISHED
            self._start_keepalives()
            for callback in list(self._established_callbacks):
                callback(self)
        if self._state is BgpSessionState.ESTABLISHED:
            self._restart_hold_timer()

    def _handle_update(self, update: UpdateMessage) -> None:
        if self._state is not BgpSessionState.ESTABLISHED:
            return
        self.updates_received += 1
        self._restart_hold_timer()
        for callback in list(self._update_callbacks):
            callback(self, update)

    def _start_keepalives(self) -> None:
        interval = max(self.negotiated_hold_time / 3.0, 1e-3)
        self._keepalive_process = PeriodicProcess(
            self._sim,
            interval,
            lambda: self._send(KeepaliveMessage()),
            name=f"bgp-keepalive:{self.peer_ip}",
        )
        self._keepalive_process.start(initial_delay=interval)

    def _restart_hold_timer(self) -> None:
        if self._hold_timer is not None:
            self._hold_timer.cancel()
        if self.negotiated_hold_time <= 0:
            self._hold_timer = None
            return
        self._hold_timer = self._sim.schedule(
            self.negotiated_hold_time,
            lambda: self._tear_down("hold timer expired"),
            name=f"bgp-hold:{self.peer_ip}",
        )

    def _tear_down(self, reason: str) -> None:
        was_established = self._state is BgpSessionState.ESTABLISHED
        self._state = BgpSessionState.IDLE
        if self._hold_timer is not None:
            self._hold_timer.cancel()
            self._hold_timer = None
        if self._keepalive_process is not None:
            self._keepalive_process.stop()
            self._keepalive_process = None
        if was_established:
            for callback in list(self._down_callbacks):
                callback(self, reason)

    def __repr__(self) -> str:
        return f"BgpSession(peer={self.peer_ip}, state={self._state.value})"
