"""Packet-level traffic source (the FPGA "source" board).

A :class:`TrafficSource` is a simple host with one port: it resolves its
gateway once via ARP (or uses a statically configured gateway MAC) and
then streams periodic UDP packets towards each configured flow's
destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arp.cache import ArpCache
from repro.arp.protocol import ArpHandler, build_arp_request
from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.net.interfaces import Interface
from repro.net.links import Port
from repro.net.packets import (
    EtherType,
    EthernetFrame,
    IpProtocol,
    IPv4Packet,
    UdpDatagram,
)
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.traffic.flows import FlowSpec


@dataclass
class TrafficSourceConfig:
    """Configuration of the source board."""

    ip: IPv4Address
    mac: MacAddress
    subnet: IPv4Prefix
    gateway_ip: IPv4Address
    flows: List[FlowSpec] = field(default_factory=list)
    #: Add up to this fraction of jitter to each flow's interval so flows
    #: do not stay phase-locked (the FPGA generator round-robins flows).
    jitter: float = 0.05


class TrafficSource:
    """Streams UDP packets towards each flow's destination via the gateway."""

    def __init__(self, sim: Simulator, name: str, config: TrafficSourceConfig) -> None:
        self._sim = sim
        self.name = name
        self.config = config
        port = Port(name, 0)
        port.set_frame_handler(self._handle_frame)
        self.interface = Interface(
            name="eth0", port=port, mac=config.mac, ip=config.ip, subnet=config.subnet
        )
        self._arp_cache = ArpCache()
        self._arp_handler = ArpHandler(
            self._arp_cache, now=lambda: sim.now, owned={config.ip: config.mac}
        )
        self._gateway_mac: Optional[MacAddress] = None
        self._processes: Dict[IPv4Address, PeriodicProcess] = {}
        self.packets_sent = 0
        self.packets_sent_per_flow: Dict[IPv4Address, int] = {}

    @property
    def port(self) -> Port:
        """The source's single port (for wiring into the lab)."""
        return self.interface.port

    @property
    def gateway_resolved(self) -> bool:
        """Whether the gateway MAC is known."""
        return self._gateway_mac is not None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Resolve the gateway and start all flows.

        The first ticks of every flow are armed through one
        :meth:`~repro.sim.engine.Simulator.schedule_batch` call; the random
        start offsets are drawn in flow order, exactly as the per-flow path
        does, so seeded runs are unchanged.
        """
        if self._gateway_mac is None:
            self._resolve_gateway()
        pending = []
        for flow in self.config.flows:
            if flow.destination in self._processes:
                continue
            process = self._build_flow_process(flow)
            offset = self._sim.random.uniform(0.0, flow.interval)
            self._processes[flow.destination] = process
            pending.append((process, offset))
        if pending:
            PeriodicProcess.start_batch(self._sim, pending)

    def stop(self) -> None:
        """Stop every flow."""
        for process in self._processes.values():
            process.stop()
        self._processes.clear()

    def add_flow(self, flow: FlowSpec) -> None:
        """Add (and immediately start) a flow."""
        self.config.flows.append(flow)
        self._start_flow(flow)

    def set_gateway_mac(self, mac: MacAddress) -> None:
        """Statically configure the gateway MAC, skipping ARP."""
        self._gateway_mac = mac

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_gateway(self) -> None:
        frame = build_arp_request(
            sender_mac=self.config.mac,
            sender_ip=self.config.ip,
            target_ip=self.config.gateway_ip,
        )
        self.interface.port.send(frame)

    def _build_flow_process(self, flow: FlowSpec) -> PeriodicProcess:
        return PeriodicProcess(
            self._sim,
            flow.interval,
            lambda f=flow: self._send_packet(f),
            jitter=self.config.jitter,
            name=f"{self.name}:flow:{flow.destination}",
        )

    def _start_flow(self, flow: FlowSpec) -> None:
        if flow.destination in self._processes:
            return
        process = self._build_flow_process(flow)
        # Spread flow start times over one interval to avoid bursts.
        offset = self._sim.random.uniform(0.0, flow.interval)
        process.start(initial_delay=offset)
        self._processes[flow.destination] = process

    def _send_packet(self, flow: FlowSpec) -> None:
        if self._gateway_mac is None:
            # Gateway not resolved yet: retry the ARP and skip this tick.
            self._resolve_gateway()
            return
        datagram = UdpDatagram(
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            payload_bytes=flow.payload_bytes,
        )
        packet = IPv4Packet(
            src=self.config.ip,
            dst=flow.destination,
            protocol=IpProtocol.UDP,
            payload=datagram,
        )
        frame = EthernetFrame(
            src_mac=self.config.mac,
            dst_mac=self._gateway_mac,
            ethertype=EtherType.IPV4,
            payload=packet,
        )
        if self.interface.port.send(frame):
            self.packets_sent += 1
            self.packets_sent_per_flow[flow.destination] = (
                self.packets_sent_per_flow.get(flow.destination, 0) + 1
            )

    def _handle_frame(self, frame: EthernetFrame, port: Port) -> None:
        if frame.ethertype is not EtherType.ARP:
            return
        packet = frame.payload
        reply = self._arp_handler.handle(packet)
        if packet.sender_ip == self.config.gateway_ip:
            self._gateway_mac = packet.sender_mac
        if reply is not None:
            port.send(reply)
