"""Traffic generation and convergence measurement.

The paper measures convergence with a pair of FPGA boards: a *source*
streaming 64-byte UDP packets towards 100 destination IPs through the
router under test, and a *sink* recording the maximum inter-packet delay
seen by each flow (precision ~70 µs).  This package provides two
equivalent instruments:

* :class:`TrafficSource` / :class:`TrafficSink` — an actual packet-level
  reproduction of the FPGA methodology, usable at small scale and in the
  examples/tests;
* :class:`ReachabilityMonitor` + :class:`PathTracer` — an event-driven
  instrument that computes the exact outage interval of every monitored
  destination by re-evaluating the forwarding path whenever a relevant
  piece of forwarding state changes.  In simulation this is *more* precise
  than the FPGA (exact timestamps instead of 70 µs granularity) and scales
  to full-table experiments where per-packet simulation is impractical.

Both instruments report the same metric — per-destination data-plane
outage after a failure — and the test suite checks they agree on small
scenarios.
"""

from repro.traffic.flows import FlowSpec, FlowStats
from repro.traffic.generator import TrafficSource, TrafficSourceConfig
from repro.traffic.monitor import TrafficSink
from repro.traffic.reachability import PathTracer, ReachabilityMonitor, TraceHop

__all__ = [
    "FlowSpec",
    "FlowStats",
    "TrafficSource",
    "TrafficSourceConfig",
    "TrafficSink",
    "PathTracer",
    "ReachabilityMonitor",
    "TraceHop",
]
