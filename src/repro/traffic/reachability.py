"""Event-driven reachability measurement.

:class:`PathTracer` walks the *current* forwarding state (router FIBs,
switch flow tables, link states) from the traffic source towards a
destination, exactly like a packet would be treated, but without generating
packets.  :class:`ReachabilityMonitor` re-runs that walk for every
monitored destination whenever a relevant piece of forwarding state
changes and records the outage intervals, giving exact per-destination
convergence times even for full-table experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.net.links import Port
from repro.net.packets import EtherType, EthernetFrame, IpProtocol, IPv4Packet, UdpDatagram
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceHop:
    """One hop of a forwarding-state walk (diagnostics)."""

    node: str
    detail: str


@dataclass
class _DestinationState:
    """Book-keeping for one monitored destination."""

    destination: IPv4Address
    prefix: Optional[IPv4Prefix]
    reachable: Optional[bool] = None
    down_since: Optional[float] = None
    outages: List[Tuple[float, float]] = field(default_factory=list)
    #: Detection label of each closed outage (parallel to ``outages``):
    #: how the failure behind it was detected ("bfd", "bgp", …), or None
    #: when no detection event was reported before the outage closed.
    detections: List[Optional[str]] = field(default_factory=list)


class PathTracer:
    """Walks forwarding state from a source port towards destinations."""

    MAX_HOPS = 16

    def __init__(
        self,
        node_by_port: Dict[int, object],
        start_port: Port,
        first_hop_mac: Callable[[], Optional[MacAddress]],
    ) -> None:
        """``node_by_port`` maps ``id(port)`` to the owning device;
        ``first_hop_mac`` returns the gateway MAC the source would use."""
        self._node_by_port = node_by_port
        self._start_port = start_port
        self._first_hop_mac = first_hop_mac

    def trace(self, destination: IPv4Address) -> Tuple[bool, List[TraceHop]]:
        """Whether a packet to ``destination`` would currently be delivered."""
        hops: List[TraceHop] = []
        dst_mac = self._first_hop_mac()
        if dst_mac is None:
            hops.append(TraceHop("source", "gateway unresolved"))
            return False, hops
        current_port = self._start_port
        for _ in range(self.MAX_HOPS):
            link = current_port.link
            if link is None or not current_port.is_up:
                hops.append(TraceHop(current_port.owner_name, "link down"))
                return False, hops
            ingress = link.peer_of(current_port)
            # In-process lookup against the lab's id()-keyed port registry
            # (see ScenarioTestbed._port_registry); trace output records
            # owner names, never the ids.
            node = self._node_by_port.get(id(ingress))  # detlint: disable=DET004
            if node is None:
                hops.append(TraceHop(ingress.owner_name, "unknown device"))
                return False, hops
            outcome = self._step(node, ingress, dst_mac, destination, hops)
            if outcome is None:
                return False, hops
            if outcome == "delivered":
                return True, hops
            current_port, dst_mac = outcome
        hops.append(TraceHop("trace", "hop limit exceeded"))
        return False, hops

    # ------------------------------------------------------------------
    # Per-device stepping
    # ------------------------------------------------------------------
    def _step(
        self,
        node: object,
        ingress: Port,
        dst_mac: MacAddress,
        destination: IPv4Address,
        hops: List[TraceHop],
    ):
        from repro.openflow.switch import OpenFlowSwitch
        from repro.router.router import Router
        from repro.traffic.monitor import TrafficSink

        if isinstance(node, OpenFlowSwitch):
            return self._step_switch(node, ingress, dst_mac, destination, hops)
        if isinstance(node, Router):
            return self._step_router(node, ingress, dst_mac, destination, hops)
        if isinstance(node, TrafficSink):
            for interface in node.interfaces.values():
                if interface.port is ingress and interface.mac == dst_mac:
                    hops.append(TraceHop(node.name, "delivered"))
                    return "delivered"
            hops.append(TraceHop(node.name, "wrong MAC at sink"))
            return None
        hops.append(TraceHop(getattr(node, "name", "?"), "not a forwarding device"))
        return None

    def _step_switch(self, switch, ingress, dst_mac, destination, hops):
        frame = _probe_frame(dst_mac, destination)
        entry = None
        for candidate in switch.flow_table.entries():
            if candidate.match.matches(frame, ingress.number):
                entry = candidate
                break
        if entry is None:
            hops.append(TraceHop(switch.name, "table miss"))
            return None
        actions = entry.actions
        if actions.is_drop or actions.to_controller:
            hops.append(TraceHop(switch.name, "dropped/punted"))
            return None
        next_mac = actions.set_eth_dst if actions.set_eth_dst is not None else dst_mac
        out_port = switch.ports().get(actions.output_port)
        if out_port is None or not out_port.is_up:
            hops.append(TraceHop(switch.name, f"output port {actions.output_port} down"))
            return None
        hops.append(TraceHop(switch.name, f"out port {actions.output_port}"))
        return out_port, next_mac

    def _step_router(self, router, ingress, dst_mac, destination, hops):
        interface = router.interface_by_port(ingress)
        if interface is None or interface.mac != dst_mac:
            hops.append(TraceHop(router.name, "frame not addressed to router"))
            return None
        decision = router.forwarding_decision(destination)
        if decision is None:
            hops.append(TraceHop(router.name, "no route / unresolved adjacency"))
            return None
        out_interface, next_mac = decision
        hops.append(TraceHop(router.name, f"via {out_interface.name} -> {next_mac}"))
        return out_interface.port, next_mac


def _probe_frame(dst_mac: MacAddress, destination: IPv4Address) -> EthernetFrame:
    """A throwaway frame used only for flow-table matching."""
    packet = IPv4Packet(
        src=IPv4Address("0.0.0.1"),
        dst=destination,
        protocol=IpProtocol.UDP,
        payload=UdpDatagram(src_port=0, dst_port=0),
    )
    return EthernetFrame(
        src_mac=MacAddress(0x02_00_00_00_00_01),
        dst_mac=dst_mac,
        ethertype=EtherType.IPV4,
        payload=packet,
    )


class ReachabilityMonitor:
    """Tracks per-destination outages by re-evaluating the forwarding path
    whenever forwarding state changes."""

    def __init__(self, sim: Simulator, tracer: PathTracer) -> None:
        self._sim = sim
        self._tracer = tracer
        self._destinations: Dict[IPv4Address, _DestinationState] = {}
        self.evaluations = 0
        #: Detection label of the current reconvergence episode; outages
        #: closing while it is set are attributed to it.
        self._active_detection: Optional[str] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def watch(self, destination: IPv4Address, prefix: Optional[IPv4Prefix] = None) -> None:
        """Start monitoring ``destination`` (covered by ``prefix`` if known)."""
        if destination not in self._destinations:
            self._destinations[destination] = _DestinationState(destination, prefix)

    def monitored(self) -> List[IPv4Address]:
        """All monitored destinations."""
        return list(self._destinations.keys())

    # ------------------------------------------------------------------
    # Event notifications
    # ------------------------------------------------------------------
    def evaluate_all(self) -> None:
        """(Re-)evaluate every monitored destination right now."""
        for state in self._destinations.values():
            self._evaluate(state)

    def notify_forwarding_change(self) -> None:
        """A global forwarding change happened (link state, switch rule…)."""
        self.evaluate_all()

    def notify_prefix_change(self, prefix: IPv4Prefix) -> None:
        """A FIB entry for ``prefix`` changed: re-evaluate covered flows."""
        for state in self._destinations.values():
            if prefix.contains(state.destination):
                self._evaluate(state)

    def note_detection(self, label: str) -> None:
        """Set the detection label outages closing from here on carry.

        The caller (the lab) owns the episode semantics — it re-resolves
        the winning mechanism on every detection event, so callbacks firing
        in the same instant cannot mis-attribute (a BFD trigger tears BGP
        sessions down in the same event, and the flush is observed first).
        """
        self._active_detection = label

    def clear_detection(self) -> None:
        """Start a fresh detection episode (called at each failure anchor)."""
        self._active_detection = None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def is_reachable(self, destination: IPv4Address) -> Optional[bool]:
        """Last known reachability of ``destination``."""
        state = self._destinations.get(destination)
        return state.reachable if state is not None else None

    def outages(self, destination: IPv4Address) -> List[Tuple[float, float]]:
        """Closed outage intervals ``(down_at, up_at)`` for ``destination``."""
        state = self._destinations.get(destination)
        return list(state.outages) if state is not None else []

    def open_outage_since(self, destination: IPv4Address) -> Optional[float]:
        """Start of the ongoing outage, if the destination is currently down."""
        state = self._destinations.get(destination)
        if state is None or state.reachable is not False:
            return None
        return state.down_since

    def convergence_times(self, failure_time: float) -> Dict[IPv4Address, float]:
        """Per-destination outage duration for the failure at ``failure_time``.

        Destinations that never went down after ``failure_time`` report 0;
        destinations still down report the time elapsed so far.
        """
        return {
            destination: duration
            for destination, (duration, _label) in self.convergence_details(
                failure_time
            ).items()
        }

    def convergence_details(
        self, failure_time: float
    ) -> Dict[IPv4Address, Tuple[float, Optional[str]]]:
        """Like :meth:`convergence_times`, but each sample also carries the
        detection label of its dominating outage (None when the destination
        never went down, or no detection event was reported)."""
        results: Dict[IPv4Address, Tuple[float, Optional[str]]] = {}
        for destination, state in self._destinations.items():
            duration = 0.0
            label: Optional[str] = None
            for (down_at, up_at), detected in zip(state.outages, state.detections):
                if up_at >= failure_time and down_at >= failure_time - 1e-9:
                    if up_at - down_at >= duration:
                        duration = up_at - down_at
                        label = detected
            if state.reachable is False and state.down_since is not None:
                if state.down_since >= failure_time - 1e-9:
                    elapsed = self._sim.now - state.down_since
                    if elapsed >= duration:
                        duration = elapsed
                        label = None  # still down: nothing closed this outage
            results[destination] = (duration, label)
        return results

    def reset(self) -> None:
        """Forget recorded outages, keeping the monitored set and state."""
        self._active_detection = None
        for state in self._destinations.values():
            state.outages.clear()
            state.detections.clear()
            state.down_since = state.down_since if state.reachable is False else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(self, state: _DestinationState) -> None:
        self.evaluations += 1
        reachable, _hops = self._tracer.trace(state.destination)
        now = self._sim.now
        if state.reachable is None:
            state.reachable = reachable
            if not reachable:
                state.down_since = now
            return
        if reachable and state.reachable is False:
            state.outages.append((state.down_since if state.down_since is not None else now, now))
            state.detections.append(self._active_detection)
            state.down_since = None
        elif not reachable and state.reachable is True:
            state.down_since = now
        state.reachable = reachable
