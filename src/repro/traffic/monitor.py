"""Packet-level traffic sink (the FPGA "sink" board).

The sink accepts every IPv4 frame addressed to one of its MACs, matches the
destination IP against the set of monitored flows (the FPGA used a CAM for
this) and updates the per-flow maximum inter-packet delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arp.cache import ArpCache
from repro.arp.protocol import ArpHandler
from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.net.interfaces import Interface
from repro.net.links import Port
from repro.net.packets import EtherType, EthernetFrame, IpProtocol
from repro.sim.engine import Simulator
from repro.traffic.flows import FlowStats


class TrafficSink:
    """Terminates monitored flows and records arrival statistics.

    The sink can have several interfaces (the paper wires it to both R2 and
    R3 so traffic reaches it regardless of the path taken).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self._arp_cache = ArpCache()
        self._arp_handler = ArpHandler(self._arp_cache, now=lambda: sim.now)
        self._flows: Dict[IPv4Address, FlowStats] = {}
        self.packets_received = 0
        self.packets_ignored = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_interface(
        self, name: str, mac: MacAddress, ip: IPv4Address, subnet: IPv4Prefix
    ) -> Interface:
        """Add an interface; returns it so the lab can wire its port."""
        if name in self.interfaces:
            raise ValueError(f"interface {name} already exists on {self.name}")
        port = Port(self.name, len(self.interfaces))
        port.set_frame_handler(self._handle_frame)
        interface = Interface(name=name, port=port, mac=mac, ip=ip, subnet=subnet)
        self.interfaces[name] = interface
        self._arp_handler.register(ip, mac)
        return interface

    def monitor(self, destination: IPv4Address) -> FlowStats:
        """Start monitoring a destination IP (a CAM entry on the FPGA)."""
        if destination not in self._flows:
            self._flows[destination] = FlowStats(destination=destination)
        return self._flows[destination]

    def monitored(self) -> List[IPv4Address]:
        """All monitored destinations."""
        return list(self._flows.keys())

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def stats(self, destination: IPv4Address) -> Optional[FlowStats]:
        """Statistics of one monitored destination."""
        return self._flows.get(destination)

    def all_stats(self) -> Dict[IPv4Address, FlowStats]:
        """Statistics of every monitored destination."""
        return dict(self._flows)

    def max_gaps(self) -> Dict[IPv4Address, float]:
        """Per-destination maximum inter-packet delay (the paper's metric)."""
        return {dst: stats.max_gap for dst, stats in self._flows.items()}

    def reset(self) -> None:
        """Clear per-flow statistics while keeping the monitored set."""
        for destination in list(self._flows.keys()):
            self._flows[destination] = FlowStats(destination=destination)
        self.packets_received = 0
        self.packets_ignored = 0

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: EthernetFrame, port: Port) -> None:
        interface = self._interface_by_port(port)
        if interface is None:
            return
        if frame.ethertype is EtherType.ARP:
            reply = self._arp_handler.handle(frame.payload)
            if reply is not None:
                port.send(reply)
            return
        if frame.ethertype is not EtherType.IPV4:
            return
        if frame.dst_mac != interface.mac and not frame.dst_mac.is_broadcast:
            return
        packet = frame.payload
        if packet.protocol is not IpProtocol.UDP:
            return
        stats = self._flows.get(packet.dst)
        if stats is None:
            self.packets_ignored += 1
            return
        self.packets_received += 1
        stats.record(self._sim.now)

    def _interface_by_port(self, port: Port) -> Optional[Interface]:
        for interface in self.interfaces.values():
            if interface.port is port:
                return interface
        return None
