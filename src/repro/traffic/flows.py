"""Flow descriptions and per-flow statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.addresses import IPv4Address


@dataclass(frozen=True)
class FlowSpec:
    """One monitored UDP flow."""

    destination: IPv4Address
    rate_pps: float = 1000.0
    src_port: int = 10000
    dst_port: int = 9
    payload_bytes: int = 18

    @property
    def interval(self) -> float:
        """Inter-packet interval in seconds."""
        return 1.0 / self.rate_pps


@dataclass
class FlowStats:
    """Arrival statistics of one flow at the sink."""

    destination: IPv4Address
    packets_received: int = 0
    first_arrival: Optional[float] = None
    last_arrival: Optional[float] = None
    max_gap: float = 0.0
    max_gap_start: Optional[float] = None
    gaps: List[float] = field(default_factory=list)

    def record(self, now: float) -> None:
        """Record a packet arrival at simulated time ``now``."""
        if self.first_arrival is None:
            self.first_arrival = now
        if self.last_arrival is not None:
            gap = now - self.last_arrival
            self.gaps.append(gap)
            if gap > self.max_gap:
                self.max_gap = gap
                self.max_gap_start = self.last_arrival
        self.last_arrival = now
        self.packets_received += 1

    def max_gap_excluding_interval(self, interval: float) -> float:
        """The worst outage seen by the flow, net of the nominal spacing.

        The FPGA methodology reports the maximum inter-packet delay; a flow
        sending every ``interval`` seconds always has at least that much
        between packets, so the outage component is ``max_gap - interval``.
        """
        return max(self.max_gap - interval, 0.0)
