"""Figure 5: convergence time vs number of prefixes.

For each prefix count and each mode (supercharged / non-supercharged) the
experiment builds the Figure 4 lab, loads the synthetic full table, fails
the primary provider and records the per-destination data-plane outage of
100 monitored flows, repeated ``repetitions`` times — the same methodology
as the paper (3 repetitions × 100 flows = 300 samples per box).

The default prefix counts are scaled down so the sweep completes in
minutes on a laptop; set the environment variable ``REPRO_FULL_SCALE=1``
(or pass ``prefix_counts=FULL_SCALE_PREFIX_COUNTS``) to run the paper's
1 k – 500 k x-axis.  The convergence behaviour is linear in the prefix
count by construction of the FIB update process, so the reduced sweep
preserves the paper's shape; EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.stats import BoxStats, format_table
from repro.runconfig import env_flag
from repro.router.fib_updater import FibUpdaterConfig
from repro.sim.engine import Simulator
from repro.topology.lab import ConvergenceLab, FailoverResult, LabConfig

#: Paper x-axis (Figure 5).
FULL_SCALE_PREFIX_COUNTS: Sequence[int] = (
    1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000,
)
#: Laptop-scale default preserving the shape (linear vs constant); the first
#: three points coincide with the paper's x-axis.
DEFAULT_PREFIX_COUNTS: Sequence[int] = (1_000, 5_000, 10_000, 20_000, 50_000)

#: Paper-reported maxima (seconds) for the non-supercharged router, used by
#: EXPERIMENTS.md and the report printer for side-by-side comparison.
PAPER_NON_SUPERCHARGED_MAX_S: Dict[int, float] = {
    1_000: 0.9,
    5_000: 1.6,
    10_000: 3.4,
    50_000: 13.8,
    100_000: 29.2,
    200_000: 56.9,
    300_000: 86.4,
    400_000: 113.1,
    500_000: 140.9,
}
#: Paper-reported supercharged convergence ceiling (seconds).
PAPER_SUPERCHARGED_MAX_S = 0.150


def active_prefix_counts() -> Sequence[int]:
    """The sweep's x-axis, honouring the ``REPRO_FULL_SCALE`` opt-in.

    The environment read goes through :mod:`repro.runconfig` — the one
    module the determinism linter (DET005) sanctions for host knobs —
    and happens at sweep-setup time, never inside a simulation.
    """
    if env_flag("REPRO_FULL_SCALE"):
        return FULL_SCALE_PREFIX_COUNTS
    return DEFAULT_PREFIX_COUNTS


@dataclass
class Figure5Row:
    """One box of Figure 5."""

    num_prefixes: int
    supercharged: bool
    stats: BoxStats
    detection_times: List[float]
    repetitions: int

    @property
    def label(self) -> str:
        """Human-readable row label."""
        mode = "supercharged" if self.supercharged else "non-supercharged"
        return f"{self.num_prefixes} prefixes ({mode})"


class Figure5Experiment:
    """Runs the full convergence sweep."""

    def __init__(
        self,
        prefix_counts: Optional[Sequence[int]] = None,
        repetitions: int = 3,
        monitored_flows: int = 100,
        seed: int = 1,
        fib_updater: Optional[FibUpdaterConfig] = None,
        modes: Sequence[bool] = (False, True),
    ) -> None:
        self.prefix_counts = list(prefix_counts or active_prefix_counts())
        self.repetitions = repetitions
        self.monitored_flows = monitored_flows
        self.seed = seed
        self.fib_updater = fib_updater or FibUpdaterConfig()
        self.modes = list(modes)
        self.rows: List[Figure5Row] = []

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> List[Figure5Row]:
        """Run every (prefix count, mode) cell and return the rows."""
        self.rows = []
        for num_prefixes in self.prefix_counts:
            for supercharged in self.modes:
                self.rows.append(self.run_cell(num_prefixes, supercharged))
        return self.rows

    def run_cell(self, num_prefixes: int, supercharged: bool) -> Figure5Row:
        """Run all repetitions of one box of the figure."""
        samples: List[float] = []
        detections: List[float] = []
        sim = Simulator(seed=self.seed)
        lab = ConvergenceLab(
            sim,
            LabConfig(
                num_prefixes=num_prefixes,
                supercharged=supercharged,
                monitored_flows=self.monitored_flows,
                seed=self.seed,
                fib_updater=self.fib_updater,
            ),
        ).build()
        lab.start()
        lab.load_feeds()
        lab.wait_converged()
        lab.setup_monitoring()
        for repetition in range(self.repetitions):
            if repetition > 0:
                lab.restore_primary()
            result = lab.run_single_failover()
            samples.extend(result.samples)
            if result.detection_time is not None:
                detections.append(result.detection_time)
        return Figure5Row(
            num_prefixes=num_prefixes,
            supercharged=supercharged,
            stats=BoxStats.from_samples(samples),
            detection_times=detections,
            repetitions=self.repetitions,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Text table comparable to the paper's Figure 5 annotations."""
        headers = [
            "prefixes",
            "mode",
            "median (s)",
            "p95 (s)",
            "max (s)",
            "paper max (s)",
        ]
        rows = []
        for row in self.rows:
            paper = (
                f"{PAPER_SUPERCHARGED_MAX_S:.3f}"
                if row.supercharged
                else _paper_reference(row.num_prefixes)
            )
            rows.append(
                [
                    str(row.num_prefixes),
                    "supercharged" if row.supercharged else "standalone",
                    f"{row.stats.median:.3f}",
                    f"{row.stats.p95:.3f}",
                    f"{row.stats.maximum:.3f}",
                    paper,
                ]
            )
        return format_table(headers, rows)


def _paper_reference(num_prefixes: int) -> str:
    if num_prefixes in PAPER_NON_SUPERCHARGED_MAX_S:
        return f"{PAPER_NON_SUPERCHARGED_MAX_S[num_prefixes]:.1f}"
    # Linear interpolation of the paper's curve for off-grid prefix counts.
    slope = PAPER_NON_SUPERCHARGED_MAX_S[500_000] / 500_000
    return f"~{slope * num_prefixes + 0.4:.1f}"


def run_figure5(
    prefix_counts: Optional[Sequence[int]] = None,
    repetitions: int = 3,
    monitored_flows: int = 100,
    seed: int = 1,
) -> List[Figure5Row]:
    """One-call version of the experiment (used by examples and benches)."""
    experiment = Figure5Experiment(
        prefix_counts=prefix_counts,
        repetitions=repetitions,
        monitored_flows=monitored_flows,
        seed=seed,
    )
    return experiment.run()
