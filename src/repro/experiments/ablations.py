"""Ablation studies called out in DESIGN.md.

The paper reports a single supercharged configuration; these sweeps expose
where its ~150 ms budget comes from and how the alternative designs
mentioned in the paper (a PIC-style hierarchical FIB inside the router)
compare:

* ``sweep_bfd_interval`` — the failure-detection component;
* ``sweep_flow_mod_latency`` — the switch-programming component;
* ``compare_fib_designs`` — flat FIB vs hierarchical FIB vs supercharged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.openflow.switch import SwitchConfig
from repro.router.fib_updater import FibUpdaterConfig
from repro.sim.engine import Simulator
from repro.topology.lab import ConvergenceLab, LabConfig


@dataclass(frozen=True)
class AblationPoint:
    """One configuration point of an ablation sweep."""

    label: str
    parameter: float
    max_convergence: float
    median_convergence: float
    detection_time: Optional[float]


def _run_lab(config: LabConfig, monitored_flows: int, seed: int) -> "AblationSample":
    sim = Simulator(seed=seed)
    lab = ConvergenceLab(sim, config).build()
    lab.start()
    lab.load_feeds()
    lab.wait_converged()
    lab.setup_monitoring(monitored_flows)
    result = lab.run_single_failover()
    samples = sorted(result.samples)
    median = samples[len(samples) // 2] if samples else 0.0
    return AblationSample(
        max_convergence=result.max_convergence,
        median_convergence=median,
        detection_time=result.detection_time,
    )


@dataclass(frozen=True)
class AblationSample:
    """Raw measurements of one lab run."""

    max_convergence: float
    median_convergence: float
    detection_time: Optional[float]


def sweep_bfd_interval(
    intervals: Sequence[float] = (0.005, 0.015, 0.03, 0.05, 0.1),
    num_prefixes: int = 1_000,
    monitored_flows: int = 20,
    seed: int = 1,
) -> List[AblationPoint]:
    """Supercharged convergence as a function of the BFD transmit interval."""
    points = []
    for interval in intervals:
        sample = _run_lab(
            LabConfig(
                num_prefixes=num_prefixes,
                supercharged=True,
                monitored_flows=monitored_flows,
                seed=seed,
                bfd_interval=interval,
            ),
            monitored_flows,
            seed,
        )
        points.append(
            AblationPoint(
                label=f"bfd={interval * 1e3:.0f}ms",
                parameter=interval,
                max_convergence=sample.max_convergence,
                median_convergence=sample.median_convergence,
                detection_time=sample.detection_time,
            )
        )
    return points


def sweep_flow_mod_latency(
    latencies: Sequence[float] = (0.001, 0.005, 0.02, 0.05),
    num_prefixes: int = 1_000,
    monitored_flows: int = 20,
    seed: int = 1,
) -> List[AblationPoint]:
    """Supercharged convergence as a function of the switch rule-install latency."""
    points = []
    for latency in latencies:
        switch = SwitchConfig(flow_mod_latency=latency, table_miss="flood")
        sample = _run_lab(
            LabConfig(
                num_prefixes=num_prefixes,
                supercharged=True,
                monitored_flows=monitored_flows,
                seed=seed,
                switch=switch,
            ),
            monitored_flows,
            seed,
        )
        points.append(
            AblationPoint(
                label=f"flowmod={latency * 1e3:.0f}ms",
                parameter=latency,
                max_convergence=sample.max_convergence,
                median_convergence=sample.median_convergence,
                detection_time=sample.detection_time,
            )
        )
    return points


def compare_fib_designs(
    num_prefixes: int = 2_000,
    monitored_flows: int = 20,
    seed: int = 1,
    fib_updater: Optional[FibUpdaterConfig] = None,
) -> List[AblationPoint]:
    """Flat FIB vs hierarchical (PIC) FIB vs supercharged router."""
    updater = fib_updater or FibUpdaterConfig()
    configurations = [
        ("flat-fib (standalone)", LabConfig(
            num_prefixes=num_prefixes, supercharged=False, seed=seed,
            monitored_flows=monitored_flows, fib_updater=updater)),
        ("hierarchical-fib (PIC)", LabConfig(
            num_prefixes=num_prefixes, supercharged=False, hierarchical_fib=True,
            seed=seed, monitored_flows=monitored_flows, fib_updater=updater)),
        ("supercharged", LabConfig(
            num_prefixes=num_prefixes, supercharged=True, seed=seed,
            monitored_flows=monitored_flows, fib_updater=updater)),
    ]
    points = []
    for index, (label, config) in enumerate(configurations):
        sample = _run_lab(config, monitored_flows, seed)
        points.append(
            AblationPoint(
                label=label,
                parameter=float(index),
                max_convergence=sample.max_convergence,
                median_convergence=sample.median_convergence,
                detection_time=sample.detection_time,
            )
        )
    return points
