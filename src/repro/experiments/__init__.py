"""Experiment harnesses reproducing the paper's evaluation.

* :mod:`repro.experiments.figure5` — the convergence-vs-prefix-count sweep
  behind Figure 5 (and the worst-case/best-case numbers quoted in §4).
* :mod:`repro.experiments.controller_bench` — the controller
  update-processing micro-benchmark (2 × 500 k updates, p99 < 125 ms).
* :mod:`repro.experiments.backup_group_analysis` — the n·(n−1) backup-group
  count analysis from §2.
* :mod:`repro.experiments.ablations` — sensitivity studies called out in
  DESIGN.md (BFD interval, flow-mod latency, FIB organisation).
* :mod:`repro.experiments.detection` — the BFD-vs-BGP detection-time split
  for local vs remote faults (the §5 remote-failure extension).
* :mod:`repro.experiments.stats` — box-plot statistics shared by all of the
  above.
"""

from repro.experiments.stats import BoxStats
from repro.experiments.figure5 import (
    DEFAULT_PREFIX_COUNTS,
    FULL_SCALE_PREFIX_COUNTS,
    Figure5Experiment,
    Figure5Row,
    run_figure5,
)
from repro.experiments.controller_bench import (
    ControllerMicrobench,
    MicrobenchResult,
)
from repro.experiments.backup_group_analysis import backup_group_counts
from repro.experiments.ablations import (
    AblationPoint,
    compare_fib_designs,
    sweep_bfd_interval,
    sweep_flow_mod_latency,
)
from repro.experiments.detection import (
    DetectionExperiment,
    DetectionRow,
    run_detection,
)

__all__ = [
    "DetectionExperiment",
    "DetectionRow",
    "run_detection",
    "BoxStats",
    "DEFAULT_PREFIX_COUNTS",
    "FULL_SCALE_PREFIX_COUNTS",
    "Figure5Experiment",
    "Figure5Row",
    "run_figure5",
    "ControllerMicrobench",
    "MicrobenchResult",
    "backup_group_counts",
    "AblationPoint",
    "compare_fib_designs",
    "sweep_bfd_interval",
    "sweep_flow_mod_latency",
]
