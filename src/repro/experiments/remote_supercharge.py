"""Remote supercharge: grouped vs per-prefix full-table remote withdraw.

The ROADMAP's open remote-path item: a full-table ``remote_withdraw``
converges at FIB-download speed in both modes because the controller
re-announces per prefix.  This experiment measures the fix.  For each
table size it runs the same supercharged testbed twice — ``remote_groups``
off (per-prefix re-announcement baseline) and on (shared-fate group
repoints) — through a full-table remote withdraw of the primary provider,
and reports

* how many flow-mods and REST batches the failover cost,
* how many BGP messages the supercharged router had to digest, and
* the data-plane restoration spread (median / max outage).

The headline claim: with groups on, the flow-mod count is proportional to
the number of shared-fate groups (not the prefix count), the router
receives zero per-prefix messages, and restoration is flat in the table
size instead of growing with it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.stats import BoxStats, format_table
from repro.scenarios.failures import FailureInjector
from repro.scenarios.spec import FailureSpec, ScenarioSpec
from repro.scenarios.testbed import build_scenario
from repro.sim.engine import Simulator

#: Default prefix-table sizes of the convergence-vs-size curve.
DEFAULT_PREFIX_COUNTS = (200, 500, 1000)

#: Acceptance threshold: grouped restoration must beat per-prefix by at
#: least this factor at the largest table size.
MIN_SPEEDUP = 5.0


@dataclass(frozen=True)
class RemotePoint:
    """One (table size, mode) cell of the comparison."""

    num_prefixes: int
    grouped: bool
    #: Shared-fate groups live on the controller after the event.
    groups: int
    #: Flow-mods pushed while absorbing the failure.
    flow_mods: int
    #: Batched REST round trips used for the failover.
    rest_batches: int
    #: BGP messages (announcements + withdraws) relayed to the router
    #: while absorbing the failure.
    router_messages: int
    detection_ms: Optional[float]
    median_ms: float
    max_ms: float
    recovered: bool

    @property
    def mode(self) -> str:
        """Human-readable mode label."""
        return "grouped" if self.grouped else "per-prefix"

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-only representation (for the bench worker's JSON)."""
        return asdict(self)


class RemoteSuperchargeExperiment:
    """Runs the grouped-vs-per-prefix curve over a list of table sizes."""

    def __init__(
        self,
        prefix_counts: Sequence[int] = DEFAULT_PREFIX_COUNTS,
        monitored_flows: int = 12,
        num_providers: int = 2,
        prefix_fraction: float = 1.0,
        seed: int = 1,
        timeout: float = 600.0,
    ) -> None:
        self.prefix_counts = list(prefix_counts)
        self.monitored_flows = monitored_flows
        self.num_providers = num_providers
        self.prefix_fraction = prefix_fraction
        self.seed = seed
        self.timeout = timeout
        self.rows: List[RemotePoint] = []

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> List[RemotePoint]:
        """Run every cell; rows are deterministic from the seed."""
        self.rows = []
        for count in self.prefix_counts:
            for grouped in (False, True):
                self.rows.append(self._run_cell(count, grouped))
        return self.rows

    def _spec(self, num_prefixes: int, grouped: bool) -> ScenarioSpec:
        mode = "grouped" if grouped else "per-prefix"
        return ScenarioSpec(
            name=f"remote-sc/{num_prefixes}/{mode}",
            num_prefixes=num_prefixes,
            supercharged=True,
            num_providers=self.num_providers,
            monitored_flows=self.monitored_flows,
            seed=self.seed,
            remote_groups=grouped,
            failures=[
                FailureSpec(
                    kind="remote_withdraw",
                    at=1.0,
                    prefix_fraction=self.prefix_fraction,
                )
            ],
        ).validate()

    def _run_cell(self, num_prefixes: int, grouped: bool) -> RemotePoint:
        spec = self._spec(num_prefixes, grouped)
        sim = Simulator(seed=spec.seed)
        lab = build_scenario(sim, spec)
        lab.start()
        lab.load_feeds()
        lab.wait_converged(timeout=self.timeout)
        lab.setup_monitoring()
        controller = lab.controllers[0]
        rules_before = controller.provisioner.rules_pushed
        batches_before = controller.provisioner.batches_pushed
        messages_before = controller.updates_relayed + controller.withdraws_relayed
        injector = FailureInjector(lab)
        injector.arm()
        sim.run_for(spec.failure_horizon + 0.05)
        recovered = lab.wait_recovered(timeout=self.timeout)
        result = lab.measure()
        return RemotePoint(
            num_prefixes=num_prefixes,
            grouped=grouped,
            groups=controller.group_count(),
            flow_mods=controller.provisioner.rules_pushed - rules_before,
            rest_batches=controller.provisioner.batches_pushed - batches_before,
            router_messages=(
                controller.updates_relayed
                + controller.withdraws_relayed
                - messages_before
            ),
            detection_ms=(
                result.detection_time * 1e3
                if result.detection_time is not None
                else None
            ),
            median_ms=(
                BoxStats.from_samples(result.samples).median * 1e3
                if result.samples
                else 0.0
            ),
            max_ms=result.max_convergence * 1e3,
            recovered=bool(recovered),
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def pairs(self) -> List[Tuple[RemotePoint, RemotePoint]]:
        """(per-prefix, grouped) row pairs in table-size order."""
        by_size: Dict[int, Dict[bool, RemotePoint]] = {}
        for row in self.rows:
            by_size.setdefault(row.num_prefixes, {})[row.grouped] = row
        return [
            (cells[False], cells[True])
            for _, cells in sorted(by_size.items())
            if False in cells and True in cells
        ]

    def speedups(self) -> Dict[int, float]:
        """Max-restoration speedup (per-prefix / grouped) per table size."""
        result = {}
        for baseline, grouped in self.pairs():
            if grouped.max_ms > 0:
                result[baseline.num_prefixes] = baseline.max_ms / grouped.max_ms
            else:
                result[baseline.num_prefixes] = float("inf")
        return result

    def acceptance_ok(self, min_speedup: float = MIN_SPEEDUP) -> bool:
        """The PR's acceptance criterion: grouped failovers cost O(#groups)
        flow-mods with no per-prefix router messages, every cell recovers,
        and the largest table restores at least ``min_speedup`` x faster."""
        speedups = self.speedups()
        if not self.rows or not speedups:
            return False
        for row in self.rows:
            if not row.recovered:
                return False
            if row.grouped and row.flow_mods > row.groups:
                return False
            if row.grouped and row.router_messages != 0:
                return False
        return speedups[max(speedups)] >= min_speedup

    def report(self) -> str:
        """Text table of the curve."""
        speedups = self.speedups()
        headers = [
            "prefixes",
            "mode",
            "groups",
            "flow mods",
            "REST batches",
            "router msgs",
            "median restore (ms)",
            "max restore (ms)",
            "speedup",
        ]
        rows = []
        for row in self.rows:
            speedup = ""
            if row.grouped and row.num_prefixes in speedups:
                speedup = f"{speedups[row.num_prefixes]:.1f}x"
            rows.append(
                [
                    str(row.num_prefixes),
                    row.mode,
                    str(row.groups),
                    str(row.flow_mods),
                    str(row.rest_batches),
                    str(row.router_messages),
                    f"{row.median_ms:.1f}",
                    f"{row.max_ms:.1f}",
                    speedup,
                ]
            )
        return format_table(headers, rows)


def run_remote_supercharge(
    prefix_counts: Sequence[int] = DEFAULT_PREFIX_COUNTS,
    monitored_flows: int = 12,
    num_providers: int = 2,
    seed: int = 1,
) -> RemoteSuperchargeExperiment:
    """One-call version (used by the CLI and the bench worker)."""
    experiment = RemoteSuperchargeExperiment(
        prefix_counts=prefix_counts,
        monitored_flows=monitored_flows,
        num_providers=num_providers,
        seed=seed,
    )
    experiment.run()
    return experiment
