"""Backup-group count analysis (§2).

The paper observes that the total number of backup groups is bounded by
``n! / (n-2)! = n·(n−1)`` for a router with ``n`` peers (e.g. 90 groups for
10 peers), independent of the number of prefixes.  This experiment
empirically fills a router's table with synthetic routes spread across
``n`` peers and counts the groups actually created, confirming both the
bound and the typical much-smaller count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bgp.decision import DecisionProcess
from repro.bgp.rib import LocRib, Route, RouteSource
from repro.core.backup_groups import BackupGroupManager
from repro.core.vnh_allocator import VnhAllocator
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.routes.prefix_gen import PrefixGenerator
from repro.routes.ris_feed import synthetic_full_table
from repro.sim.random import SeededRandom


@dataclass(frozen=True)
class BackupGroupCount:
    """Observed vs theoretical group counts for one peer count."""

    num_peers: int
    num_prefixes: int
    observed_groups: int

    @property
    def theoretical_bound(self) -> int:
        """The paper's n·(n−1) bound."""
        return self.num_peers * (self.num_peers - 1)

    @property
    def within_bound(self) -> bool:
        """Whether the observation respects the bound."""
        return self.observed_groups <= self.theoretical_bound


def backup_group_counts(
    peer_counts: Sequence[int] = (2, 3, 5, 10),
    num_prefixes: int = 2_000,
    paths_per_prefix: int = 3,
    seed: int = 7,
) -> List[BackupGroupCount]:
    """Count backup groups for tables announced by varying numbers of peers."""
    results = []
    for num_peers in peer_counts:
        results.append(
            _count_for(num_peers, num_prefixes, paths_per_prefix, seed)
        )
    return results


def _count_for(
    num_peers: int, num_prefixes: int, paths_per_prefix: int, seed: int
) -> BackupGroupCount:
    random = SeededRandom(seed + num_peers)
    peers = [IPv4Address(f"10.0.0.{10 + index}") for index in range(num_peers)]
    prefixes = PrefixGenerator(seed=seed).generate(num_prefixes)
    decision = DecisionProcess()
    loc_rib = LocRib(decision.rank)
    manager = BackupGroupManager(VnhAllocator(IPv4Prefix("10.9.0.0/16")))
    per_peer_feeds = {
        peer: synthetic_full_table(
            num_prefixes, seed=seed + index, provider_asn=65001 + index, prefixes=prefixes
        )
        for index, peer in enumerate(peers)
    }
    count = min(paths_per_prefix, num_peers)
    for prefix_index, prefix in enumerate(prefixes):
        announcing_peers = random.sample(peers, count)
        for peer in announcing_peers:
            feed_route = per_peer_feeds[peer].routes[prefix_index]
            route = Route(
                prefix=prefix,
                attributes=feed_route.to_update(peer).attributes,
                source=RouteSource(peer_ip=peer, peer_asn=65001, router_id=peer),
            )
            change = loc_rib.update(route)
            manager.process_change(change)
    return BackupGroupCount(
        num_peers=num_peers,
        num_prefixes=num_prefixes,
        observed_groups=len(manager.groups()),
    )
