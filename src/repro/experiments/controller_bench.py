"""Controller update-processing micro-benchmark (§4, last paragraph).

The paper feeds its Python BGP controller 2 × 500 k updates from two
different peers and reports the per-update processing time (worst case
0.8 s, 99th percentile 125 ms on their hardware).  This harness measures
the same quantity on our implementation: for every incoming update it
times the full processing pipeline — decision-process re-ranking, Listing 1
backup-group computation and next-hop rewriting — in wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bgp.decision import DecisionProcess
from repro.bgp.messages import UpdateMessage
from repro.bgp.rib import LocRib, Route, RouteSource
from repro.core.backup_groups import ActionKind, BackupGroupManager
from repro.core.vnh_allocator import VnhAllocator
from repro.experiments.stats import BoxStats, percentile
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.routes.prefix_gen import PrefixGenerator
from repro.routes.ris_feed import synthetic_full_table

#: Paper-reported processing-time figures (seconds) for comparison.
PAPER_P99_S = 0.125
PAPER_WORST_S = 0.8


@dataclass
class MicrobenchResult:
    """Per-update processing-time distribution."""

    updates_processed: int
    stats: BoxStats
    announcements_to_router: int
    groups_created: int

    @property
    def p99(self) -> float:
        """99th percentile processing time in seconds."""
        return self.samples_percentile(0.99)

    def samples_percentile(self, fraction: float) -> float:
        """Percentile over the recorded samples (kept on the instance)."""
        return self._samples_percentile(fraction)

    # Populated by the bench; stored privately to keep the dataclass light.
    _samples: List[float] = None  # type: ignore[assignment]

    def _samples_percentile(self, fraction: float) -> float:
        if not self._samples:
            return 0.0
        return percentile(self._samples, fraction)


class ControllerMicrobench:
    """Feeds N updates per peer through the controller processing pipeline."""

    def __init__(
        self,
        updates_per_peer: int = 10_000,
        seed: int = 1,
        peer_ips: Sequence[str] = ("10.0.0.2", "10.0.0.3"),
        vnh_pool: str = "10.0.0.128/25",
    ) -> None:
        self.updates_per_peer = updates_per_peer
        self.seed = seed
        self.peer_ips = [IPv4Address(ip) for ip in peer_ips]
        self.vnh_pool = IPv4Prefix(vnh_pool)

    def build_workload(self) -> List[List[UpdateMessage]]:
        """One UPDATE stream per peer, same prefixes, peer-specific paths."""
        prefixes = PrefixGenerator(seed=self.seed).generate(self.updates_per_peer)
        streams = []
        for index, peer_ip in enumerate(self.peer_ips):
            feed = synthetic_full_table(
                self.updates_per_peer,
                seed=self.seed + index,
                provider_asn=65001 + index,
                prefixes=prefixes,
            )
            streams.append(feed.updates(peer_ip))
        return streams

    def run(self) -> MicrobenchResult:
        """Process every update and record its wall-clock processing time."""
        decision = DecisionProcess()
        loc_rib = LocRib(decision.rank)
        allocator = VnhAllocator(self.vnh_pool)
        groups = BackupGroupManager(allocator)
        samples: List[float] = []
        announcements = 0
        groups_created = 0
        streams = self.build_workload()
        sources = {
            peer_ip: RouteSource(
                peer_ip=peer_ip, peer_asn=65001 + index, router_id=peer_ip
            )
            for index, peer_ip in enumerate(self.peer_ips)
        }
        local_prefs = {
            peer_ip: 200 if index == 0 else 100
            for index, peer_ip in enumerate(self.peer_ips)
        }
        for peer_ip, stream in zip(self.peer_ips, streams):
            source = sources[peer_ip]
            for update in stream:
                # This experiment *is* a wall-clock microbench (paper §4:
                # per-update controller processing time); its output is a
                # printed report, never a byte-stable campaign export.
                started = time.perf_counter()  # detlint: disable=DET002
                attributes = update.attributes.with_local_pref(local_prefs[peer_ip])
                route = Route(prefix=update.prefix, attributes=attributes, source=source)
                change = loc_rib.update(route)
                actions = groups.process_change(change)
                for action in actions:
                    if action.kind is ActionKind.GROUP_CREATED:
                        groups_created += 1
                    elif action.kind in (
                        ActionKind.ANNOUNCE_VIRTUAL,
                        ActionKind.ANNOUNCE_REAL,
                    ):
                        # The rewrite the controller would relay to the router.
                        update.rewritten_next_hop(action.next_hop)
                        announcements += 1
                samples.append(time.perf_counter() - started)  # detlint: disable=DET002
        result = MicrobenchResult(
            updates_processed=len(samples),
            stats=BoxStats.from_samples(samples),
            announcements_to_router=announcements,
            groups_created=groups_created,
        )
        result._samples = samples
        return result

    def report(self, result: MicrobenchResult) -> str:
        """Short text report including the paper's reference numbers."""
        lines = [
            f"updates processed          : {result.updates_processed}",
            f"groups created             : {result.groups_created}",
            f"announcements to router    : {result.announcements_to_router}",
            f"median processing time     : {result.stats.median * 1e6:.1f} us",
            f"p99 processing time        : {result.p99 * 1e6:.1f} us"
            f"  (paper: {PAPER_P99_S * 1e3:.0f} ms)",
            f"worst-case processing time : {result.stats.maximum * 1e3:.3f} ms"
            f"  (paper: {PAPER_WORST_S * 1e3:.0f} ms)",
        ]
        return "\n".join(lines)
