"""Box-plot statistics matching the presentation of Figure 5."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not samples:
        raise ValueError("cannot compute a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    # lower + weight * (upper - lower) never undershoots ordered[lower] under
    # floating point, keeping percentiles monotone in ``fraction``.
    return ordered[lower] + weight * (ordered[upper] - ordered[lower])


@dataclass(frozen=True)
class BoxStats:
    """The statistics Figure 5 shows for each box."""

    count: int
    minimum: float
    p5: float
    q1: float
    median: float
    q3: float
    p95: float
    maximum: float
    mean: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        """Summarise a list of convergence samples."""
        if not samples:
            raise ValueError("cannot summarise an empty sample list")
        values = list(samples)
        return cls(
            count=len(values),
            minimum=min(values),
            p5=percentile(values, 0.05),
            q1=percentile(values, 0.25),
            median=percentile(values, 0.50),
            q3=percentile(values, 0.75),
            p95=percentile(values, 0.95),
            maximum=max(values),
            mean=sum(values) / len(values),
        )

    def scaled(self, factor: float) -> "BoxStats":
        """Return the same statistics multiplied by ``factor`` (unit changes)."""
        return BoxStats(
            count=self.count,
            minimum=self.minimum * factor,
            p5=self.p5 * factor,
            q1=self.q1 * factor,
            median=self.median * factor,
            q3=self.q3 * factor,
            p95=self.p95 * factor,
            maximum=self.maximum * factor,
            mean=self.mean * factor,
        )

    def as_milliseconds(self) -> "BoxStats":
        """Convert second-based samples to milliseconds."""
        return self.scaled(1e3)


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Render a fixed-width text table (used by the benchmark reports)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
