"""Detection-path comparison: BFD vs BGP, local vs remote faults.

The paper's core speedup comes from detecting *local* failures with BFD in
tens of milliseconds instead of waiting for BGP.  Its §5 extension asks
what happens when the failure is *remote* — the next hop dies somewhere
upstream, the access link never loses carrier, and BFD has nothing to see.
This experiment runs the same testbed through a 2×2 grid

* fault class: ``local`` (``link_down`` on the primary provider link) vs
  ``remote`` (``remote_withdraw`` of the primary provider's table), and
* mode: supercharged vs standalone,

and reports, for every cell, how the failure was detected (BFD or BGP
propagation), the detection latency, the controller-push latency (the
instant the supercharged router heard about it) and the resulting
data-plane convergence spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.stats import format_table
from repro.scenarios.campaign import run_scenario
from repro.scenarios.spec import ScenarioSpec, failure_campaign

#: (label, failure kind) pairs making up the fault-class axis.
FAULT_CLASSES: Sequence = (("local", "link_down"), ("remote", "remote_withdraw"))


@dataclass(frozen=True)
class DetectionRow:
    """One cell of the detection comparison."""

    fault: str
    supercharged: bool
    detection_path: Optional[str]
    detection_ms: Optional[float]
    push_ms: Optional[float]
    median_ms: float
    max_ms: float
    detection_paths: Dict[str, int]
    recovered: bool

    @property
    def mode(self) -> str:
        """Human-readable mode label."""
        return "supercharged" if self.supercharged else "standalone"


class DetectionExperiment:
    """Runs the 2×2 fault-class × mode grid and tabulates detection paths."""

    def __init__(
        self,
        num_prefixes: int = 1000,
        monitored_flows: int = 20,
        prefix_fraction: float = 1.0,
        seed: int = 1,
        timeout: float = 600.0,
    ) -> None:
        self.num_prefixes = num_prefixes
        self.monitored_flows = monitored_flows
        self.prefix_fraction = prefix_fraction
        self.seed = seed
        self.timeout = timeout
        self.rows: List[DetectionRow] = []

    def _spec(self, fault_kind: str, supercharged: bool) -> ScenarioSpec:
        mode = "sc" if supercharged else "standalone"
        return ScenarioSpec(
            name=f"detection/{fault_kind}+{mode}",
            num_prefixes=self.num_prefixes,
            supercharged=supercharged,
            num_providers=2,
            monitored_flows=self.monitored_flows,
            seed=self.seed,
            failures=failure_campaign(
                fault_kind, prefix_fraction=self.prefix_fraction
            ),
        ).validate()

    def run(self) -> List[DetectionRow]:
        """Run all four cells; the rows are deterministic from the seed."""
        self.rows = []
        for fault, kind in FAULT_CLASSES:
            for supercharged in (True, False):
                record: Dict[str, Any] = run_scenario(
                    self._spec(kind, supercharged), timeout=self.timeout
                )
                self.rows.append(
                    DetectionRow(
                        fault=fault,
                        supercharged=supercharged,
                        detection_path=record["detection_path"],
                        detection_ms=record["detection_ms"],
                        push_ms=record["push_ms"],
                        median_ms=record["median_ms"],
                        max_ms=record["max_ms"],
                        detection_paths=record["detection_paths"],
                        recovered=record["recovered"],
                    )
                )
        return self.rows

    def report(self) -> str:
        """Text table of the detection-time split."""
        headers = [
            "fault",
            "mode",
            "detected via",
            "detect (ms)",
            "push (ms)",
            "median conv (ms)",
            "max conv (ms)",
        ]
        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.fault,
                    row.mode,
                    row.detection_path or "-",
                    f"{row.detection_ms:.1f}" if row.detection_ms is not None else "-",
                    f"{row.push_ms:.1f}" if row.push_ms is not None else "-",
                    f"{row.median_ms:.1f}",
                    f"{row.max_ms:.1f}",
                ]
            )
        return format_table(headers, rows)


def run_detection(
    num_prefixes: int = 1000,
    monitored_flows: int = 20,
    prefix_fraction: float = 1.0,
    seed: int = 1,
) -> List[DetectionRow]:
    """One-call version of the experiment (used by the CLI and examples)."""
    experiment = DetectionExperiment(
        num_prefixes=num_prefixes,
        monitored_flows=monitored_flows,
        prefix_fraction=prefix_fraction,
        seed=seed,
    )
    return experiment.run()
