"""Deterministic sim-time metrics: counters, gauges, fixed-edge histograms.

The registry is designed for the repository's determinism contract
(serial == pooled == rerun byte-identical):

* every recorded value is a *simulated* quantity (sim seconds, queue
  depths, batch sizes) — never wall clock, never ids or memory addresses;
* histograms use **fixed bucket edges** chosen at creation time, so the
  serialised output is byte-stable regardless of the sample stream order
  (no dynamic re-binning, no quantile sketches);
* :meth:`MetricsRegistry.to_dict` sorts every key, so ``json.dumps(...,
  sort_keys=True)`` of the result is reproducible across processes.

Instrument call sites must guard on the telemetry handle (``if
self._telemetry is not None: ...``) so disabled runs never pay more than
one attribute load and an ``is not None`` test.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, TypeVar

_Instrument = TypeVar("_Instrument")


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        """Primitive representation (stable key order via sorted dumps)."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level with a high-water mark.

    ``add`` models queue-style occupancy (enqueue/dequeue); ``set``
    models sampled levels (group count, pool occupancy).  The high-water
    mark records the largest level ever seen, which is what campaign
    records export (peak flow-mod queue depth, peak VNH occupancy).
    """

    __slots__ = ("name", "value", "high_water", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.high_water = 0
        self.samples = 0

    def set(self, value: int) -> None:
        """Record the current level."""
        self.value = value
        self.samples += 1
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: int) -> None:
        """Shift the current level by ``delta`` (may be negative)."""
        self.set(self.value + delta)

    def to_dict(self) -> Dict[str, Any]:
        """Primitive representation."""
        return {
            "type": "gauge",
            "value": self.value,
            "high_water": self.high_water,
            "samples": self.samples,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, high_water={self.high_water})"


class Histogram:
    """Fixed-edge histogram (byte-stable output).

    ``edges`` are the *upper* bounds of the finite buckets; an implicit
    ``+inf`` bucket catches everything above the last edge.  Edges are
    frozen at creation — re-requesting the same histogram with different
    edges is an error, so two call sites cannot silently skew each
    other's binning.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError(f"histogram {name}: needs at least one bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name}: edges must be strictly increasing")
        self.name = name
        self.edges: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (None when empty).

        Prometheus-style: find the first bucket whose cumulative count
        reaches ``q * count`` and interpolate linearly inside it.  The
        estimate is clamped to the observed ``[min, max]`` so the
        overflow bucket and sparse edges cannot extrapolate beyond the
        sample range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"histogram {self.name}: quantile {q} outside [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative < target or bucket_count == 0:
                continue
            if index >= len(self.edges):
                # Overflow bucket: no finite upper bound to interpolate to.
                return self.max
            lower = self.edges[index - 1] if index > 0 else self.min
            upper = self.edges[index]
            estimate = lower + (upper - lower) * (target - previous) / bucket_count
            return min(max(estimate, self.min), self.max)
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        """Primitive representation (rounded so floats stay stable)."""
        p50 = self.quantile(0.50)
        p95 = self.quantile(0.95)
        p99 = self.quantile(0.99)
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": round(self.total, 9),
            "min": round(self.min, 9) if self.min is not None else None,
            "max": round(self.max, 9) if self.max is not None else None,
            "p50": round(p50, 6) if p50 is not None else None,
            "p95": round(p95, 6) if p95 is not None else None,
            "p99": round(p99, 6) if p99 is not None else None,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name, edges)`` are
    get-or-create: the first caller defines the instrument, later callers
    share it.  A name can hold exactly one instrument kind.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram called ``name`` with ``edges``."""
        histogram = self._get_or_create(name, Histogram, lambda: Histogram(name, edges))
        if histogram.edges != tuple(float(edge) for edge in edges):
            raise ValueError(
                f"histogram {name}: edges {list(edges)} conflict with the"
                f" registered edges {list(histogram.edges)}"
            )
        return histogram

    def get(self, name: str) -> Optional[Any]:
        """The instrument called ``name``, if registered."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def to_dict(self) -> Dict[str, Any]:
        """Primitive snapshot of every instrument, keyed by sorted name."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def _get_or_create(
        self,
        name: str,
        kind: Type[_Instrument],
        factory: Callable[[], _Instrument],
    ) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} is a {type(instrument).__name__},"
                f" not a {kind.__name__}"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
