"""Structured trace bus keyed on simulated time.

:class:`TraceBus` is the event half of the telemetry layer: components
emit named :class:`TraceEvent` records ("bfd.down", "fib.batch_drain",
"remote.flush") carrying primitive fields.  Events land in an in-memory
ring buffer (bounded, so long campaigns cannot grow without limit) and,
optionally, in a JSONL sink for offline analysis.

Determinism rules (the same contract as the metrics registry):

* the timestamp is whatever the injected ``clock`` returns — in every
  production wiring that is ``lambda: sim.now``, i.e. simulated seconds.
  Wall clock never enters a recorded value.
* the bus is strictly *passive*: emitting an event never schedules
  simulator work, draws randomness, or mutates component state, so a run
  with telemetry enabled executes exactly the same simulation as one
  without.
* field values must be primitives (str/int/float/bool/None); the emitter
  stringifies addresses and names before calling :meth:`TraceBus.emit`.

:class:`Span` measures an interval in sim time: ``bus.span("x")`` opens
it, ``span.end()`` emits one ``TraceEvent`` whose ``duration`` field is
the elapsed simulated seconds.  Spans are also context managers: ``with
bus.span("x"):`` ends the span on exit and records an escaping
exception's type as an ``error`` field.

Causal stamping: when a :class:`~repro.telemetry.causal.CausalContext`
is bound (:meth:`TraceBus.bind_causal`) and an outage is open, every
emitted event is stamped with the ambient ``outage`` root id — the
passive thread that chains detection, engine flush, flow-mod push and
FIB install records back to one failure injection.  An explicit
``outage`` field from the emitter always wins over the ambient one.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Deque, Dict, IO, List, Optional, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (causal imports us)
    from repro.telemetry.causal import CausalContext


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record at a simulated instant."""

    at: float
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Primitive representation (field keys sorted for stable JSON)."""
        return {
            "at": round(self.at, 9),
            "name": self.name,
            "fields": {key: self.fields[key] for key in sorted(self.fields)},
        }


class Span:
    """An open sim-time interval; :meth:`end` emits its closing event."""

    __slots__ = ("_bus", "name", "started_at", "_fields", "_closed")

    def __init__(self, bus: "TraceBus", name: str, started_at: float, fields: Dict[str, Any]) -> None:
        self._bus = bus
        self.name = name
        self.started_at = started_at
        self._fields = fields
        self._closed = False

    def end(self, **fields: Any) -> TraceEvent:
        """Close the span: emits ``name`` with a ``duration`` field (sim
        seconds since the span opened) plus the open- and close-time
        fields.  Idempotence is the caller's job — closing twice emits
        twice."""
        self._closed = True
        merged = dict(self._fields)
        merged.update(fields)
        merged["duration"] = round(self._bus.now() - self.started_at, 9)
        return self._bus.emit(self.name, **merged)

    @property
    def closed(self) -> bool:
        """Whether :meth:`end` has run."""
        return self._closed

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        # Auto-close on scope exit; a span the body already ended stays
        # ended (no duplicate event).  Escaping exceptions are recorded
        # by type name and then re-raised (we never suppress).
        if self._closed:
            return None
        if exc_type is not None:
            self.end(error=exc_type.__name__)
        else:
            self.end()
        return None


class TraceBus:
    """Bounded in-memory trace stream with an optional JSONL sink."""

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = 4096,
        sink: Optional[IO[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._clock = clock
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = sink
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self._causal: Optional["CausalContext"] = None
        self.emitted = 0

    def now(self) -> float:
        """The bus clock (sim time in every production wiring)."""
        return self._clock()

    def on_emit(self, callback: Callable[[TraceEvent], None]) -> None:
        """Register a listener fired synchronously for every event."""
        self._listeners.append(callback)

    def bind_causal(self, causal: "CausalContext") -> None:
        """Stamp the ambient outage id into every event emitted while an
        outage is open (purely additive: pre-failure events are
        unchanged, explicit ``outage`` fields win)."""
        self._causal = causal

    def emit(self, name: str, **fields: Any) -> TraceEvent:
        """Record one event at the current clock reading."""
        if self._causal is not None and "outage" not in fields:
            outage_id = self._causal.current_id
            if outage_id is not None:
                fields["outage"] = outage_id
        event = TraceEvent(at=self._clock(), name=name, fields=fields)
        self._events.append(event)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict(), sort_keys=True))
            self._sink.write("\n")
        for callback in list(self._listeners):
            callback(event)
        return event

    def span(self, name: str, **fields: Any) -> Span:
        """Open a :class:`Span` at the current clock reading."""
        return Span(self, name, self._clock(), fields)

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events (oldest evicted first), optionally filtered."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def clear(self) -> None:
        """Drop the buffered events (the sink and counters are untouched)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"TraceBus({len(self._events)}/{self.capacity} buffered, {self.emitted} emitted)"
