"""Per-episode stage timeline: the paper's convergence decomposition.

The paper decomposes convergence into four stages —

    detect  → the failure detector (BFD) or BGP propagation notices
    decide  → the controller (or the router's own decision process)
              selects the new forwarding state
    push    → the flow-mod / route update reaches the forwarding element
    install → the forwarding element has applied the new state

:class:`StageTimeline` collects the *first* instant each stage was
observed after an episode origin (the failure time).  The scenario lab
feeds it from trace-bus events through a mode-specific ``event name →
stage`` mapping; the campaign record then exports one millisecond offset
per stage.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.telemetry.trace import TraceEvent

#: Canonical stage names, in pipeline order.
STAGE_DETECT = "detect"
STAGE_DECIDE = "decide"
STAGE_PUSH = "push"
STAGE_INSTALL = "install"
STAGES = (STAGE_DETECT, STAGE_DECIDE, STAGE_PUSH, STAGE_INSTALL)


class StageTimeline:
    """First-observation instants of each convergence stage.

    ``mark`` keeps the earliest instant per stage; :meth:`reset` opens a
    new episode (called alongside ``DetectionTracker.new_episode``).  The
    timeline is purely observational: it never talks back to the
    simulation.
    """

    def __init__(self) -> None:
        self._marks: Dict[str, float] = {}

    def reset(self) -> None:
        """Open a fresh episode: every stage may be marked again."""
        self._marks.clear()

    def mark(self, stage: str, at: float) -> None:
        """Record ``stage`` at sim time ``at`` (first mark wins)."""
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        if stage not in self._marks:
            self._marks[stage] = at

    def instant(self, stage: str) -> Optional[float]:
        """The first instant ``stage`` was observed (None if never)."""
        return self._marks.get(stage)

    def offsets_ms(self, origin: float) -> Dict[str, Optional[float]]:
        """Milliseconds from ``origin`` to each stage's first observation.

        Stages never observed map to ``None``.  Offsets are rounded like
        every other exported sim quantity so JSON output stays stable.
        """
        return {
            stage: (
                round((self._marks[stage] - origin) * 1e3, 6)
                if stage in self._marks
                else None
            )
            for stage in STAGES
        }


def timeline_recorder(
    timeline: StageTimeline, stage_by_event: Mapping[str, str]
) -> Callable[[TraceEvent], None]:
    """A trace-bus ``on_emit`` listener marking ``timeline`` stages.

    ``stage_by_event`` maps trace event names to stage names; events not
    in the mapping are ignored.  Wire it with
    ``bus.on_emit(timeline_recorder(timeline, mapping))``.
    """

    def record(event: TraceEvent) -> None:
        stage = stage_by_event.get(event.name)
        if stage is not None:
            timeline.mark(stage, event.at)

    return record
