"""Exporters: OpenMetrics text rendering and campaign report artifacts.

Two output families, both built from already-recorded telemetry (the
exporters never touch a live simulation, so they cannot perturb one):

* :func:`render_openmetrics` turns a
  :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot into the
  OpenMetrics text exposition format (the Prometheus wire format), so a
  scenario's counters/gauges/histograms can be scraped or diffed with
  standard tooling.  Metric names are sanitised (dots → underscores) and
  prefixed ``repro_``; the wall-clock scale gauges of
  :mod:`repro.telemetry.process` are excluded by default so the rendered
  text stays byte-identical across reruns.
* :func:`build_campaign_report` + :func:`render_report_html` assemble the
  ``cli report`` artifact: a JSON document carrying each scenario's
  record, outage summaries, per-prefix restoration chains and CDF, plus
  a self-contained HTML page (inline SVG, no external assets) with a
  stage waterfall and the restoration CDFs.

Determinism: every iteration sorts its keys, floats are formatted with
fixed precision, and nothing here reads wall clock — rendering the same
registry or report twice yields identical bytes.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import STAGES

#: Metrics excluded from byte-stable renderings (wall-clock quantities).
WALLCLOCK_METRICS: Tuple[str, ...] = ("process.peak_rss_mb",)


def _sanitize(name: str) -> str:
    """An OpenMetrics-legal metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    cleaned = "".join(
        character if character.isalnum() or character in "_:" else "_"
        for character in name
    )
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    """Canonical sample value formatting (integers stay integral)."""
    if float(value) == int(value):
        return str(int(value))
    return repr(round(float(value), 9))


def render_openmetrics(
    metrics: MetricsRegistry,
    exclude: Sequence[str] = WALLCLOCK_METRICS,
) -> str:
    """The registry in OpenMetrics text exposition format.

    Counters render as ``<name>_total``, gauges as ``<name>`` plus a
    companion ``<name>_high_water`` gauge, histograms as cumulative
    ``_bucket{le=...}`` series with ``_sum`` and ``_count``.  Ends with
    the mandatory ``# EOF`` terminator.
    """
    excluded = set(exclude)
    lines: List[str] = []
    snapshot = metrics.to_dict()
    for name in sorted(snapshot):
        if name in excluded:
            continue
        instrument = snapshot[name]
        metric = _sanitize(name)
        kind = instrument["type"]
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {_format_value(instrument['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(instrument['value'])}")
            lines.append(f"# TYPE {metric}_high_water gauge")
            lines.append(
                f"{metric}_high_water {_format_value(instrument['high_water'])}"
            )
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            edges: List[float] = list(instrument["edges"])
            counts: List[int] = list(instrument["counts"])
            for edge, bucket_count in zip(edges, counts):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
                )
            cumulative += counts[len(edges)]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_format_value(instrument['total'])}")
            lines.append(f"{metric}_count {instrument['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Campaign report artifact (JSON + self-contained HTML)
# ----------------------------------------------------------------------

def build_campaign_report(
    entries: Sequence[Mapping[str, Any]],
    title: str = "Convergence provenance report",
) -> Dict[str, Any]:
    """Assemble the JSON report document from per-scenario entries.

    Each entry carries ``record`` (the campaign record), ``outages``
    (ledger summaries), ``chains`` (per-subject restoration chains),
    ``restoration_cdf`` (``[ms, fraction]`` pairs) and optionally
    ``profile`` (the sim profiler snapshot).  The report adds a compact
    cross-scenario summary so the JSON is useful without post-processing.
    """
    total_chains = 0
    total_prefixes = 0
    scenarios: List[Dict[str, Any]] = []
    for entry in entries:
        outages = list(entry.get("outages") or [])
        total_chains += sum(int(outage.get("chains", 0)) for outage in outages)
        total_prefixes += sum(
            int(outage.get("prefixes_restored", 0)) for outage in outages
        )
        scenarios.append(dict(entry))
    return {
        "title": title,
        "scenario_count": len(scenarios),
        "total_chains": total_chains,
        "total_prefix_chains": total_prefixes,
        "scenarios": scenarios,
    }


def report_to_json(report: Mapping[str, Any]) -> str:
    """Canonical JSON serialisation of the report (sorted keys)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


_STAGE_COLORS = {
    "detect": "#c0504d",
    "decide": "#f79646",
    "push": "#4f81bd",
    "install": "#9bbb59",
}
_CDF_COLORS = ("#4f81bd", "#c0504d", "#9bbb59", "#8064a2", "#f79646", "#4bacc6")


def _scenario_label(record: Mapping[str, Any]) -> str:
    failures = record.get("failures")
    failure = failures[0] if isinstance(failures, list) and failures else "none"
    return f"{record.get('name', '?')}/{failure} seed={record.get('seed', '?')}"


def _render_waterfall(scenarios: Sequence[Mapping[str, Any]]) -> str:
    """Inline-SVG stage waterfall: one row per scenario, one bar per stage."""
    rows: List[Tuple[str, Dict[str, Optional[float]]]] = []
    scale = 0.0
    for entry in scenarios:
        record = entry.get("record") or {}
        offsets: Dict[str, Optional[float]] = {}
        for stage in STAGES:
            value = record.get(f"stage_{stage}_ms")
            offsets[stage] = float(value) if value is not None else None
            if offsets[stage] is not None:
                scale = max(scale, offsets[stage] or 0.0)
        rows.append((_scenario_label(record), offsets))
    if not rows:
        return "<p>No scenarios.</p>"
    scale = scale or 1.0
    row_height = 26
    chart_width = 640
    label_width = 280
    height = row_height * len(rows) + 30
    parts: List[str] = [
        f'<svg width="{label_width + chart_width + 80}" height="{height}"'
        f' font-family="monospace" font-size="12">'
    ]
    for index, (label, offsets) in enumerate(rows):
        y = 10 + index * row_height
        parts.append(
            f'<text x="0" y="{y + 12}">{html.escape(label)}</text>'
        )
        for stage in STAGES:
            value = offsets[stage]
            if value is None:
                continue
            x = label_width + (value / scale) * chart_width
            color = _STAGE_COLORS[stage]
            parts.append(
                f'<rect x="{label_width:.1f}" y="{y + 4}" width="{max(x - label_width, 2.0):.1f}"'
                f' height="4" fill="{color}" opacity="0.35">'
                f"<title>{stage}: {value:.3f} ms</title></rect>"
            )
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y + 6}" r="4" fill="{color}">'
                f"<title>{stage}: {value:.3f} ms</title></circle>"
            )
    legend_y = height - 8
    legend_x = label_width
    for stage in STAGES:
        parts.append(
            f'<circle cx="{legend_x}" cy="{legend_y - 4}" r="4" fill="{_STAGE_COLORS[stage]}"/>'
        )
        parts.append(f'<text x="{legend_x + 8}" y="{legend_y}">{stage}</text>')
        legend_x += 90
    parts.append(
        f'<text x="{label_width}" y="{height - 20}">0 .. {scale:.3f} ms</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _render_cdf(scenarios: Sequence[Mapping[str, Any]]) -> str:
    """Inline-SVG per-prefix restoration CDF, one step curve per scenario."""
    curves: List[Tuple[str, List[List[float]]]] = []
    scale = 0.0
    for entry in scenarios:
        points = list(entry.get("restoration_cdf") or [])
        if not points:
            continue
        record = entry.get("record") or {}
        scale = max(scale, float(points[-1][0]))
        curves.append((_scenario_label(record), points))
    if not curves:
        return "<p>No restoration chains recorded.</p>"
    scale = scale or 1.0
    width, height, pad = 640, 300, 40
    parts: List[str] = [
        f'<svg width="{width + 260}" height="{height}" font-family="monospace" font-size="12">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width}" y2="{height - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" stroke="#888"/>',
        f'<text x="{pad}" y="{height - pad + 16}">0</text>',
        f'<text x="{width - 60}" y="{height - pad + 16}">{scale:.3f} ms</text>',
        f'<text x="4" y="{pad}">1.0</text>',
        f'<text x="4" y="{height - pad}">0.0</text>',
    ]
    for index, (label, points) in enumerate(curves):
        color = _CDF_COLORS[index % len(_CDF_COLORS)]
        coordinates: List[str] = [f"{pad:.1f},{height - pad:.1f}"]
        for latency, fraction in points:
            x = pad + (float(latency) / scale) * (width - pad)
            y = (height - pad) - float(fraction) * (height - 2 * pad)
            coordinates.append(f"{x:.1f},{y:.1f}")
        parts.append(
            f'<polyline points="{" ".join(coordinates)}" fill="none"'
            f' stroke="{color}" stroke-width="1.5"/>'
        )
        legend_y = pad + index * 16
        parts.append(
            f'<rect x="{width + 10}" y="{legend_y - 8}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width + 26}" y="{legend_y}">{html.escape(label)}'
            f" ({len(points)} chains)</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def render_report_html(report: Mapping[str, Any]) -> str:
    """The report as one self-contained HTML page (inline SVG/CSS)."""
    scenarios: Sequence[Mapping[str, Any]] = report.get("scenarios") or []
    outage_rows: List[str] = []
    for entry in scenarios:
        record = entry.get("record") or {}
        for outage in entry.get("outages") or []:
            cells = [
                _scenario_label(record),
                str(outage.get("outage")),
                str(outage.get("kind")),
                str(outage.get("chains")),
                str(outage.get("prefixes_restored")),
                str(outage.get("groups_restored")),
            ]
            for stage in STAGES:
                value = outage.get(f"{stage}_ms")
                cells.append("-" if value is None else f"{float(value):.3f}")
            value = outage.get("last_restore_ms")
            cells.append("-" if value is None else f"{float(value):.3f}")
            outage_rows.append(
                "<tr>" + "".join(f"<td>{html.escape(cell)}</td>" for cell in cells) + "</tr>"
            )
    header_cells = (
        ["scenario", "outage", "kind", "chains", "prefixes", "groups"]
        + [f"{stage} (ms)" for stage in STAGES]
        + ["last restore (ms)"]
    )
    table = (
        "<table><thead><tr>"
        + "".join(f"<th>{html.escape(cell)}</th>" for cell in header_cells)
        + "</tr></thead><tbody>"
        + "".join(outage_rows)
        + "</tbody></table>"
    )
    title = html.escape(str(report.get("title", "Report")))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: monospace; margin: 24px; color: #222; }}
h1, h2 {{ font-weight: normal; }}
table {{ border-collapse: collapse; margin: 12px 0; }}
th, td {{ border: 1px solid #bbb; padding: 4px 8px; text-align: right; }}
th {{ background: #eee; }}
td:first-child, th:first-child {{ text-align: left; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{report.get("scenario_count", 0)} scenario(s),
 {report.get("total_chains", 0)} restoration chain(s)
 ({report.get("total_prefix_chains", 0)} per-prefix).</p>
<h2>Outage chains</h2>
{table}
<h2>Stage waterfall (first observation per stage, ms after failure)</h2>
{_render_waterfall(scenarios)}
<h2>Per-prefix restoration CDF</h2>
{_render_cdf(scenarios)}
</body>
</html>
"""
