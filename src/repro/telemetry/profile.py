"""Deterministic sim profiler: per-handler event counts and sim-time shares.

Wall-clock profilers (cProfile & friends) are useless under the
repository's determinism contract — their numbers change run to run and
machine to machine.  :class:`SimProfiler` profiles in *simulated* time
instead: it observes every executed event (via
``Simulator.set_observer``) and attributes to each handler — keyed by
the event's schedule-time ``name`` — both an execution count and the
simulated time the clock advanced to reach it.  The result answers "what
does the event loop spend sim time on?" and is byte-identical across
serial/pooled/rerun, so it can be exported and diffed like any other
telemetry.

The observer is strictly passive (DET006 applies): it counts and sums,
never schedules, cancels or mutates simulator state.  When no observer
is installed the engine pays one attribute load + ``is not None`` test
per event — the same bargain as every other telemetry guard.

:func:`sample_shard_gauges` is the sharded-build companion: it folds the
per-shard build summaries of ``run_sharded_build`` into per-shard gauges
(prefixes, groups, flow-mods) plus min/max skew gauges, so a sharded
planning run exposes its balance through the same registry as everything
else.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry


class SimProfiler:
    """Per-handler (event-name) execution counts and sim-time attribution."""

    __slots__ = ("_counts", "_sim_time", "_last_now", "events_observed")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._sim_time: Dict[str, float] = {}
        self._last_now: Optional[float] = None
        self.events_observed = 0

    def observe(self, name: str, when: float) -> None:
        """Record one executed event (called by the simulator's observer
        hook).  The sim time advanced since the previously observed event
        is attributed to this event's handler."""
        key = name or "(unnamed)"
        self.events_observed += 1
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._last_now is None:
            advanced = when
        else:
            advanced = when - self._last_now
        self._last_now = when
        if advanced > 0.0:
            self._sim_time[key] = self._sim_time.get(key, 0.0) + advanced

    def handlers(self) -> List[str]:
        """Observed handler keys, sorted."""
        return sorted(self._counts)

    def to_dict(self) -> Dict[str, Any]:
        """Byte-stable snapshot: per-handler counts, attributed sim time
        and its share of the total observed sim time."""
        total_time = sum(self._sim_time.values())
        handlers: Dict[str, Any] = {}
        for key in sorted(self._counts):
            attributed = self._sim_time.get(key, 0.0)
            handlers[key] = {
                "count": self._counts[key],
                "sim_time_s": round(attributed, 9),
                "share": round(attributed / total_time, 6) if total_time else 0.0,
            }
        return {
            "events_observed": self.events_observed,
            "sim_time_total_s": round(total_time, 9),
            "handlers": handlers,
        }

    def table(self) -> str:
        """Fixed-width text rendering, busiest handler first."""
        snapshot = self.to_dict()
        handlers: Dict[str, Dict[str, Any]] = snapshot["handlers"]
        lines = [f"{'handler':<40} {'count':>10} {'sim_time_s':>14} {'share':>8}"]
        ordered = sorted(
            handlers.items(),
            key=lambda item: (-item[1]["count"], item[0]),
        )
        for key, stats in ordered:
            lines.append(
                f"{key:<40} {stats['count']:>10} {stats['sim_time_s']:>14.9f}"
                f" {stats['share']:>8.4f}"
            )
        lines.append(
            f"{'total':<40} {snapshot['events_observed']:>10}"
            f" {snapshot['sim_time_total_s']:>14.9f} {1.0 if handlers else 0.0:>8.4f}"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        """Forget everything (a fresh profile window)."""
        self._counts.clear()
        self._sim_time.clear()
        self._last_now = None
        self.events_observed = 0

    def __repr__(self) -> str:
        return f"SimProfiler({len(self._counts)} handlers, {self.events_observed} events)"


def sample_shard_gauges(
    telemetry: Optional[MetricsRegistry],
    shards: Sequence[Tuple[int, int, int, int]],
) -> None:
    """Record per-shard build gauges into ``telemetry`` (no-op when None).

    ``shards`` holds ``(shard_index, prefixes_loaded, groups, flow_mods)``
    tuples, one per shard of a ``run_sharded_build``.  Besides the
    per-shard gauges this also sets ``shard.prefixes_min`` /
    ``shard.prefixes_max`` so shard skew is visible without reading every
    per-shard series.
    """
    if telemetry is None or not shards:
        return
    prefix_counts: List[int] = []
    for shard_index, prefixes_loaded, groups, flow_mods in shards:
        telemetry.gauge(f"shard.{shard_index}.prefixes").set(prefixes_loaded)
        telemetry.gauge(f"shard.{shard_index}.groups").set(groups)
        telemetry.gauge(f"shard.{shard_index}.flow_mods").set(flow_mods)
        prefix_counts.append(prefixes_loaded)
    telemetry.gauge("shard.prefixes_min").set(min(prefix_counts))
    telemetry.gauge("shard.prefixes_max").set(max(prefix_counts))
