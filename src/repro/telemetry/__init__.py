"""Sim-time observability: trace bus + metrics registry + stage timeline.

:class:`Telemetry` bundles the two halves every instrumented component
needs — a :class:`~repro.telemetry.trace.TraceBus` for structured events
and a :class:`~repro.telemetry.metrics.MetricsRegistry` for counters,
gauges and fixed-edge histograms — behind one handle that is attached
*optionally*:

    class Component:
        def __init__(self):
            self._telemetry = None          # disabled: zero overhead

        def attach_telemetry(self, telemetry):
            self._telemetry = telemetry

        def hot_path(self):
            ...
            if self._telemetry is not None:  # guard at the call site
                self._telemetry.emit("component.thing", value=42)

The contract (see ``docs/observability.md``):

* **zero-cost when disabled** — call sites guard on ``is not None``; no
  telemetry object is ever constructed unless a scenario asks for one;
* **deterministic when enabled** — only sim-time quantities are
  recorded, emission is passive (no scheduling, no randomness), so the
  simulation trajectory is bit-identical with telemetry on or off and
  the recorded output is byte-identical across serial/pooled/rerun;
* **byte-stable serialisation** — sorted keys, fixed histogram edges,
  rounded floats.

One deliberate exception: the process-level scale gauges of
:mod:`repro.telemetry.process` (``process.peak_rss_mb``) are wall-clock
quantities sampled on explicit request only; no byte-stable export ever
reads them.
"""

from __future__ import annotations

from typing import Any, Callable, IO, Optional, Sequence

from repro.telemetry.causal import (
    CausalContext,
    ConvergenceLedger,
    OutageContext,
)
from repro.telemetry.export import render_openmetrics
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.process import peak_rss_mb, sample_scale_gauges
from repro.telemetry.profile import SimProfiler, sample_shard_gauges
from repro.telemetry.timeline import (
    STAGE_DECIDE,
    STAGE_DETECT,
    STAGE_INSTALL,
    STAGE_PUSH,
    STAGES,
    StageTimeline,
    timeline_recorder,
)
from repro.telemetry.trace import Span, TraceBus, TraceEvent

__all__ = [
    "CausalContext",
    "ConvergenceLedger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OutageContext",
    "SimProfiler",
    "Span",
    "StageTimeline",
    "STAGES",
    "STAGE_DETECT",
    "STAGE_DECIDE",
    "STAGE_PUSH",
    "STAGE_INSTALL",
    "Telemetry",
    "TraceBus",
    "TraceEvent",
    "peak_rss_mb",
    "render_openmetrics",
    "sample_scale_gauges",
    "sample_shard_gauges",
    "timeline_recorder",
]


class Telemetry:
    """One scenario's observability context (trace bus + metrics)."""

    def __init__(
        self,
        clock: Callable[[], float],
        trace_capacity: int = 4096,
        sink: Optional[IO[str]] = None,
    ) -> None:
        self.trace = TraceBus(clock, capacity=trace_capacity, sink=sink)
        self.metrics = MetricsRegistry()
        # Causal provenance: the outage-root context and the per-prefix
        # restoration ledger.  The trace bus stamps the ambient outage id
        # into every event emitted while an outage is open.
        self.causal = CausalContext()
        self.ledger = ConvergenceLedger(self.causal)
        self.trace.bind_causal(self.causal)

    # Convenience pass-throughs so instrumented code reads naturally.
    def emit(self, name: str, **fields: Any) -> TraceEvent:
        """Emit a trace event (see :meth:`TraceBus.emit`)."""
        return self.trace.emit(name, **fields)

    def span(self, name: str, **fields: Any) -> Span:
        """Open a sim-time span (see :meth:`TraceBus.span`)."""
        return self.trace.span(name, **fields)

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self.metrics.gauge(name)

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create a fixed-edge histogram."""
        return self.metrics.histogram(name, edges)

    @property
    def outage_id(self) -> Optional[str]:
        """The ambient outage root id (None outside an outage)."""
        return self.causal.current_id

    def restored(self, subject: Any, kind: str = "prefix") -> None:
        """Record a restored subject into the convergence ledger.

        No-op outside an outage, so the initial table load stays free of
        chains and the per-entry hot path pays one ``is None`` test.
        ``subject`` is stringified lazily (only when a chain is minted).
        """
        if self.causal.current_id is None:
            return
        self.ledger.note_restored(str(subject), self.trace.now(), kind=kind)
