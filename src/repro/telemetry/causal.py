"""Causal convergence provenance: outage contexts and per-prefix chains.

The paper's headline number is measured *per prefix* (Figure 5 is a CDF
of individual prefix restoration times), but the stage timeline of
:mod:`repro.telemetry.timeline` only records the episode's first
observation of each stage.  This module adds the missing causal layer:

* every disruptive failure injection mints an **outage context** — a
  deterministic ``outage-<n>`` root id plus its sim-time open instant —
  through :meth:`CausalContext.open_outage`;
* while an outage is open, the trace bus stamps the ambient id into
  every emitted event (``outage`` field), so detection, engine flush,
  flow-mod push and FIB install records all chain back to the same root;
* the :class:`ConvergenceLedger` folds those chained observations into
  per-prefix (and per-group) restoration latencies: each restored
  subject gets a reconstructible detect → decide → push → install chain
  relative to its outage's open instant, and the set of latencies is the
  paper's restoration CDF.

Determinism contract (DET006 applies to this file): everything here is
*passive bookkeeping*.  Opening an outage, stamping events and recording
restorations never schedule simulator work, never draw randomness and
never touch component state, so the simulation trajectory is identical
with the causal layer on or off.  Ids are minted from a plain counter
(never ``id()`` or wall clock), subjects are stringified by the caller,
and every export sorts its keys — serial, pooled and rerun campaigns
stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.telemetry.timeline import STAGES
from repro.telemetry.trace import TraceEvent

#: Chain subject kinds.
KIND_PREFIX = "prefix"
KIND_GROUP = "group"


class OutageContext:
    """One minted outage: the root of a convergence provenance chain."""

    __slots__ = ("outage_id", "opened_at", "kind", "provider")

    def __init__(
        self,
        outage_id: str,
        opened_at: float,
        kind: Optional[str] = None,
        provider: Optional[int] = None,
    ) -> None:
        self.outage_id = outage_id
        self.opened_at = opened_at
        self.kind = kind
        self.provider = provider

    def to_dict(self) -> Dict[str, Any]:
        """Primitive representation (rounded like every sim export)."""
        return {
            "outage": self.outage_id,
            "opened_at_s": round(self.opened_at, 9),
            "kind": self.kind,
            "provider": self.provider,
        }

    def __repr__(self) -> str:
        return f"OutageContext({self.outage_id} @ {self.opened_at})"


class CausalContext:
    """Deterministic outage-id minting and ambient-context lookup.

    The scenario lab opens one context per disruptive injection (from
    ``ScenarioLab.note_failure``); instrumented components and the trace
    bus only ever *read* :attr:`current_id`.  Ids are ``outage-1``,
    ``outage-2``, … in injection order, so reruns mint identical ids.
    """

    def __init__(self) -> None:
        self._outages: List[OutageContext] = []
        self._current: Optional[OutageContext] = None

    def open_outage(
        self,
        at: float,
        kind: Optional[str] = None,
        provider: Optional[int] = None,
    ) -> str:
        """Mint a new root context at sim time ``at`` and make it current."""
        outage = OutageContext(
            f"outage-{len(self._outages) + 1}", at, kind=kind, provider=provider
        )
        self._outages.append(outage)
        self._current = outage
        return outage.outage_id

    @property
    def current(self) -> Optional[OutageContext]:
        """The open outage context (None before the first injection)."""
        return self._current

    @property
    def current_id(self) -> Optional[str]:
        """The open outage id (None before the first injection)."""
        return self._current.outage_id if self._current is not None else None

    def outages(self) -> List[OutageContext]:
        """Every minted context, in injection order."""
        return list(self._outages)

    def get(self, outage_id: str) -> Optional[OutageContext]:
        """The context minted as ``outage_id``, if any."""
        for outage in self._outages:
            if outage.outage_id == outage_id:
                return outage
        return None

    def __len__(self) -> int:
        return len(self._outages)

    def __repr__(self) -> str:
        return f"CausalContext({len(self._outages)} outages, current={self.current_id})"


def quantile_from_sorted(values: List[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if not values:
        raise ValueError("quantile of an empty sample list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    position = q * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] + (values[upper] - values[lower]) * fraction


class ConvergenceLedger:
    """Folds chained trace observations into per-subject restoration chains.

    Two inputs feed the ledger while an outage is open:

    * :meth:`recorder` returns a trace-bus listener that records the
      first instant each convergence stage (detect/decide/push/install)
      was observed *per outage*, using the lab's mode-specific event →
      stage mapping;
    * :meth:`note_restored` records the first instant a subject (a FIB
      prefix or a backup-group VMAC) had its new forwarding state
      applied.

    Outputs are per-subject chains (:meth:`chains`), sorted restoration
    latencies (:meth:`restoration_latencies_ms` — the Figure 5 CDF
    sample vector) and compact per-outage summaries
    (:meth:`outage_summaries` — the campaign record's ``outage_chains``
    field).  Everything before the first injection is ignored: the
    initial table load is not a restoration.
    """

    def __init__(self, causal: CausalContext) -> None:
        self._causal = causal
        # outage_id -> stage -> first sim instant
        self._stages: Dict[str, Dict[str, float]] = {}
        # outage_id -> (kind, subject) -> first restore instant
        self._restores: Dict[str, Dict[Tuple[str, str], float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def recorder(
        self, stage_by_event: Mapping[str, str]
    ) -> Callable[[TraceEvent], None]:
        """A trace-bus ``on_emit`` listener marking per-outage stages."""

        def record(event: TraceEvent) -> None:
            current = self._causal.current_id
            if current is None:
                return
            stage = stage_by_event.get(event.name)
            if stage is None:
                return
            marks = self._stages.setdefault(current, {})
            if stage not in marks:
                marks[stage] = event.at

        return record

    def note_restored(self, subject: str, at: float, kind: str = KIND_PREFIX) -> None:
        """Record that ``subject`` had its new state applied at ``at``.

        Ignored when no outage is open (initial load, steady state);
        first observation per (outage, kind, subject) wins, so repoint +
        regroup double-writes still count one chain.
        """
        current = self._causal.current_id
        if current is None:
            return
        restores = self._restores.setdefault(current, {})
        key = (kind, subject)
        if key not in restores:
            restores[key] = at

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def chains(
        self,
        outage_id: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Per-subject restoration chains, sorted by (outage, kind, subject).

        Each chain carries the outage root, the subject, its restoration
        latency and the outage's first-observed stage offsets — a full
        detect → decide → push → install reconstruction in milliseconds
        from the failure instant.
        """
        result: List[Dict[str, Any]] = []
        for outage in self._causal.outages():
            if outage_id is not None and outage.outage_id != outage_id:
                continue
            restores = self._restores.get(outage.outage_id, {})
            stage_offsets = self._stage_offsets_ms(outage)
            for chain_kind, subject in sorted(restores):
                if kind is not None and chain_kind != kind:
                    continue
                restored_at = restores[(chain_kind, subject)]
                chain: Dict[str, Any] = {
                    "outage": outage.outage_id,
                    "kind": chain_kind,
                    "subject": subject,
                    "restore_ms": round((restored_at - outage.opened_at) * 1e3, 6),
                }
                for stage in STAGES:
                    chain[f"{stage}_ms"] = stage_offsets[stage]
                result.append(chain)
        return result

    def restoration_latencies_ms(
        self,
        outage_id: Optional[str] = None,
        kind: str = KIND_PREFIX,
    ) -> List[float]:
        """Sorted restoration latencies (ms) — the CDF sample vector."""
        latencies: List[float] = []
        for outage in self._causal.outages():
            if outage_id is not None and outage.outage_id != outage_id:
                continue
            restores = self._restores.get(outage.outage_id, {})
            for (chain_kind, _subject), restored_at in sorted(restores.items()):
                if chain_kind != kind:
                    continue
                latencies.append(
                    round((restored_at - outage.opened_at) * 1e3, 6)
                )
        latencies.sort()
        return latencies

    def restoration_cdf(
        self,
        outage_id: Optional[str] = None,
        kind: str = KIND_PREFIX,
    ) -> List[List[float]]:
        """The empirical CDF as ``[latency_ms, cumulative_fraction]`` pairs."""
        latencies = self.restoration_latencies_ms(outage_id, kind=kind)
        total = len(latencies)
        return [
            [latency, round((index + 1) / total, 6)]
            for index, latency in enumerate(latencies)
        ]

    def restoration_deciles_ms(
        self,
        outage_id: Optional[str] = None,
        kind: str = KIND_PREFIX,
    ) -> List[float]:
        """Eleven CDF deciles (p0, p10, …, p100) of the restoration
        latencies — the compact representation campaign records carry as
        ``restoration_cdf_ms``.  Empty when nothing was restored."""
        latencies = self.restoration_latencies_ms(outage_id, kind=kind)
        if not latencies:
            return []
        return [
            round(quantile_from_sorted(latencies, decile / 10), 6)
            for decile in range(11)
        ]

    def outage_summaries(self) -> List[Dict[str, Any]]:
        """One compact provenance summary per outage, in injection order."""
        summaries: List[Dict[str, Any]] = []
        for outage in self._causal.outages():
            restores = self._restores.get(outage.outage_id, {})
            prefix_count = sum(1 for chain_kind, _ in restores if chain_kind == KIND_PREFIX)
            group_count = sum(1 for chain_kind, _ in restores if chain_kind == KIND_GROUP)
            summary = outage.to_dict()
            summary["chains"] = len(restores)
            summary["prefixes_restored"] = prefix_count
            summary["groups_restored"] = group_count
            stage_offsets = self._stage_offsets_ms(outage)
            for stage in STAGES:
                summary[f"{stage}_ms"] = stage_offsets[stage]
            if restores:
                instants = sorted(restores.values())
                summary["first_restore_ms"] = round(
                    (instants[0] - outage.opened_at) * 1e3, 6
                )
                summary["last_restore_ms"] = round(
                    (instants[-1] - outage.opened_at) * 1e3, 6
                )
            else:
                summary["first_restore_ms"] = None
                summary["last_restore_ms"] = None
            summaries.append(summary)
        return summaries

    def _stage_offsets_ms(self, outage: OutageContext) -> Dict[str, Optional[float]]:
        marks = self._stages.get(outage.outage_id, {})
        return {
            stage: (
                round((marks[stage] - outage.opened_at) * 1e3, 6)
                if stage in marks
                else None
            )
            for stage in STAGES
        }

    def __repr__(self) -> str:
        total = sum(len(restores) for restores in self._restores.values())
        return f"ConvergenceLedger({len(self._causal)} outages, {total} chains)"
