"""Process-level scale gauges (wall-clock, not sim-time).

The full-DFZ scale work (1M-route tables, sharded planner builds) needs
observability that the sim-time contract in :mod:`repro.telemetry`
deliberately excludes: how big the route state actually is, how many
planner shards carried it, and how much resident memory the build cost.
This module supplies those three gauges:

* ``rib.prefixes`` — prefixes held by the sampled RIB (deterministic);
* ``planner.shard_count`` — planner domains the table is split across
  (1 for an in-process controller, ``num_shards`` for a sharded build;
  deterministic);
* ``process.peak_rss_mb`` — peak resident set size of *this* process
  (:func:`peak_rss_mb`), the only wall-clock quantity in the metrics
  registry.

The RSS gauge is inherently nondeterministic, which is why no campaign
record or byte-stable export ever reads it — it exists for interactive
inspection (``python -m repro.cli metrics``) and the scale bench, both
of which read the gauge directly rather than through the deterministic
record path.
"""

from __future__ import annotations

import resource
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.telemetry.metrics import MetricsRegistry

__all__ = ["peak_rss_mb", "sample_scale_gauges"]


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    On Linux ``ru_maxrss`` is *inherited across fork+exec*, so a fresh
    bench worker spawned from a fat parent (a long pytest session) would
    report the parent's peak; ``VmHWM`` in ``/proc/self/status`` resets
    on exec and measures only this process.  The getrusage fallback
    covers non-procfs platforms (``ru_maxrss`` is KiB on Linux, bytes on
    macOS).
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024  # kB -> MiB
    except (OSError, ValueError, IndexError):
        pass
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return rss / (1024 * 1024)
    return rss / 1024


def sample_scale_gauges(
    telemetry: "Optional[MetricsRegistry]",
    *,
    rib_prefixes: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> None:
    """Record the scale gauges on ``telemetry`` *now*.

    Explicit-sample semantics, like ``Controller.sample_occupancy``:
    callers invoke this at failover/record/merge time, never per route.
    ``None`` fields are skipped so partial samplers (e.g. a shard merge
    that has no single RIB) don't zero the others' gauges.
    """
    if telemetry is None:
        return
    if rib_prefixes is not None:
        telemetry.gauge("rib.prefixes").set(rib_prefixes)
    if shard_count is not None:
        telemetry.gauge("planner.shard_count").set(shard_count)
    telemetry.gauge("process.peak_rss_mb").set(round(peak_rss_mb(), 1))
