"""Sanctioned host-environment configuration access.

A scenario's behaviour must be a function of its spec and seed alone —
that is the determinism contract the linter's DET005 rule enforces by
banning ``os.environ`` reads everywhere else in ``src/repro``.  The few
legitimate environment knobs (opt-in full-scale sweeps, CI smoke modes)
are read *here*, at experiment-setup time, and surfaced to callers as
explicit values; nothing in a running simulation may consult them.

Keeping every read in one module makes the environment surface
greppable and reviewable: a new knob is a new accessor call here, not a
stray ``os.environ.get`` somewhere in a sim path.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["env_flag", "env_text"]

#: Spellings accepted as "on" (case-insensitive).
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean opt-in knob: ``1``/``true``/``yes``/``on`` enable it."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


def env_text(name: str, default: Optional[str] = None) -> Optional[str]:
    """Free-text knob (e.g. a report output path)."""
    raw = os.environ.get(name)
    return default if raw is None else raw
