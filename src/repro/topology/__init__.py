"""Evaluation topologies.

:mod:`repro.topology.lab` rebuilds the paper's Figure 4 hardware lab in
simulation: the router under test (R1), a primary and a backup provider
(R2, R3), the OpenFlow switch interconnecting them, the traffic source and
sink boards, and — in supercharged mode — the controller (or a redundant
pair of controllers) attached to the switch.
"""

from repro.topology.lab import (
    ConvergenceLab,
    FailoverResult,
    LabConfig,
    build_convergence_lab,
)

__all__ = [
    "ConvergenceLab",
    "FailoverResult",
    "LabConfig",
    "build_convergence_lab",
]
