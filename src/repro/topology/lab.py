"""The Figure 4 convergence lab — now a preset of the scenario engine.

Rebuilds the paper's hardware testbed in simulation:

* **R1** — the router under test (supercharged or not);
* **R2 / R3** — the primary ($) and backup ($$) providers, both advertising
  the same synthetic full table and both forwarding received traffic to the
  sink;
* **switch** — the OpenFlow switch interconnecting R1, R2, R3 and, in
  supercharged mode, the controller(s);
* **source / sink** — the FPGA traffic boards, reproduced either as real
  packet generators or as the event-driven reachability monitor;
* **controller** — the supercharged controller (optionally two redundant
  replicas) in supercharged mode.

Since the scenario engine landed, all the construction and workflow
machinery lives in :class:`repro.scenarios.testbed.ScenarioLab`; this
module pins it to the paper's exact two-provider topology (addresses,
MACs, switch ports and names below) and keeps the historical API:
``build → load_feeds → wait_converged → setup_monitoring → fail_primary →
wait_recovered → measure`` (and ``restore_primary`` between repetitions).
The equivalent declarative form is ``repro.scenarios.presets.figure4()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.openflow.switch import SwitchConfig
from repro.router.fib_updater import FibUpdaterConfig
from repro.router.router import Router
from repro.routes.ris_feed import RouteFeed
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.testbed import FailoverResult, ScenarioLab
from repro.core.controller import SuperchargedController
from repro.sim.engine import Simulator

__all__ = [
    "ConvergenceLab",
    "FailoverResult",
    "LabConfig",
    "build_convergence_lab",
]

# ----------------------------------------------------------------------
# Addressing plan (constants so tests and docs can refer to them; these
# are exactly what AddressPlan computes for 1 edge router + 2 providers)
# ----------------------------------------------------------------------
CORE_SUBNET = IPv4Prefix("10.0.0.0/24")
R1_CORE_IP = IPv4Address("10.0.0.1")
R2_CORE_IP = IPv4Address("10.0.0.2")
R3_CORE_IP = IPv4Address("10.0.0.3")
CONTROLLER_IP = IPv4Address("10.0.0.100")
CONTROLLER2_IP = IPv4Address("10.0.0.101")
VNH_POOL = IPv4Prefix("10.0.0.128/25")

SOURCE_SUBNET = IPv4Prefix("192.168.1.0/24")
R1_SOURCE_IP = IPv4Address("192.168.1.1")
SOURCE_IP = IPv4Address("192.168.1.2")

SINK_R2_SUBNET = IPv4Prefix("192.168.2.0/30")
R2_SINK_IP = IPv4Address("192.168.2.1")
SINK_R2_IP = IPv4Address("192.168.2.2")

SINK_R3_SUBNET = IPv4Prefix("192.168.3.0/30")
R3_SINK_IP = IPv4Address("192.168.3.1")
SINK_R3_IP = IPv4Address("192.168.3.2")

R1_ASN, R2_ASN, R3_ASN, CONTROLLER_ASN = 65000, 65001, 65002, 64512

R1_CORE_MAC = MacAddress("00:00:00:00:00:01")
R2_CORE_MAC = MacAddress("00:00:00:00:00:02")
R3_CORE_MAC = MacAddress("00:00:00:00:00:03")
CONTROLLER_MAC = MacAddress("00:00:00:00:00:64")
CONTROLLER2_MAC = MacAddress("00:00:00:00:00:65")
R1_SOURCE_MAC = MacAddress("00:00:00:00:01:01")
SOURCE_MAC = MacAddress("00:00:00:00:01:02")
R2_SINK_MAC = MacAddress("00:00:00:00:02:01")
SINK_R2_MAC = MacAddress("00:00:00:00:02:02")
R3_SINK_MAC = MacAddress("00:00:00:00:03:01")
SINK_R3_MAC = MacAddress("00:00:00:00:03:02")

SWITCH_PORT_R1, SWITCH_PORT_R2, SWITCH_PORT_R3 = 1, 2, 3
SWITCH_PORT_CONTROLLER, SWITCH_PORT_CONTROLLER2 = 4, 5


@dataclass
class LabConfig:
    """Everything that varies between experiment runs."""

    num_prefixes: int = 1000
    supercharged: bool = True
    #: PIC ablation: give R1 a hierarchical FIB instead of a flat one.
    hierarchical_fib: bool = False
    #: Redundancy: run two controller replicas (supercharged mode only).
    redundant_controllers: bool = False
    monitored_flows: int = 100
    seed: int = 1
    #: R1 FIB download timing (the knob behind Figure 5's linear curve).
    fib_updater: FibUpdaterConfig = field(default_factory=FibUpdaterConfig)
    #: BFD timing used by whoever does the failure detection.
    bfd_interval: float = 0.03
    bfd_multiplier: int = 3
    #: Switch hardware characteristics.
    switch: SwitchConfig = field(
        default_factory=lambda: SwitchConfig(flow_mod_latency=5e-3, table_miss="flood")
    )
    #: REST call latency between the BGP and SDN controller components.
    rest_latency: float = 2e-3
    #: LOCAL_PREF assigned to routes learned from the primary / backup.
    primary_local_pref: int = 200
    backup_local_pref: int = 100
    #: Also run packet-level traffic (small scenarios only).
    packet_traffic: bool = False
    packet_rate_pps: float = 200.0
    link_latency: float = 10e-6

    def to_scenario_spec(self) -> ScenarioSpec:
        """The equivalent declarative scenario description."""
        return ScenarioSpec(
            name="figure4" if self.supercharged else "figure4-standalone",
            num_prefixes=self.num_prefixes,
            supercharged=self.supercharged,
            num_providers=2,
            provider_names=["R2", "R3"],
            provider_local_prefs=[self.primary_local_pref, self.backup_local_pref],
            redundant_controllers=self.redundant_controllers,
            hierarchical_fib=self.hierarchical_fib,
            monitored_flows=self.monitored_flows,
            seed=self.seed,
            bfd_interval=self.bfd_interval,
            bfd_multiplier=self.bfd_multiplier,
            rest_latency=self.rest_latency,
            flow_mod_latency=self.switch.flow_mod_latency,
            link_latency=self.link_latency,
            packet_traffic=self.packet_traffic,
            packet_rate_pps=self.packet_rate_pps,
        )


class ConvergenceLab(ScenarioLab):
    """The complete paper evaluation environment (Figure-4 preset).

    A :class:`~repro.scenarios.testbed.ScenarioLab` pinned to the paper's
    topology, plus the historical accessors (``r1``/``r2``/``r3``,
    ``feed_r2``/``feed_r3``, ``fail_primary``/``restore_primary``…) the
    rest of the code base and the experiments grew up with.
    """

    def __init__(self, sim: Simulator, config: LabConfig) -> None:
        self.config = config
        super().__init__(
            sim,
            config.to_scenario_spec(),
            fib_updater=config.fib_updater,
            switch_config=config.switch,
        )

    # ------------------------------------------------------------------
    # Historical accessors
    # ------------------------------------------------------------------
    @property
    def r1(self) -> Optional[Router]:
        """The router under test."""
        return self.edge_routers[0] if self.edge_routers else None

    @property
    def r2(self) -> Optional[Router]:
        """The primary ($) provider."""
        return self.providers[0] if self.providers else None

    @property
    def r3(self) -> Optional[Router]:
        """The backup ($$) provider."""
        return self.providers[1] if len(self.providers) > 1 else None

    @property
    def controller(self) -> Optional[SuperchargedController]:
        """The (first) supercharged controller, if present."""
        return self.controllers[0] if self.controllers else None

    @property
    def feed_r2(self) -> Optional[RouteFeed]:
        """The synthetic full table advertised by R2."""
        return self.provider_feeds[0] if self.provider_feeds else None

    @property
    def feed_r3(self) -> Optional[RouteFeed]:
        """The synthetic full table advertised by R3."""
        return self.provider_feeds[1] if len(self.provider_feeds) > 1 else None

    # ------------------------------------------------------------------
    # Historical workflow names
    # ------------------------------------------------------------------
    def build(self) -> "ConvergenceLab":
        """Instantiate and wire every device; idempotent."""
        super().build()
        return self

    def fail_primary(self) -> float:
        """Disconnect R2 from the switch (the paper's failure event)."""
        return self.fail_provider(0)

    def restore_primary(self, timeout: float = 3600.0) -> bool:
        """Reconnect R2, re-open its BGP sessions and wait for steady state."""
        return self.restore_provider(0, timeout=timeout)

    def run_failover(
        self, num_flows: Optional[int] = None, timeout: float = 3600.0
    ) -> FailoverResult:
        """Convenience wrapper running the full workflow once."""
        if not self._built:
            self.build()
        if not self.r1.bgp.established_peers():
            self.start()
            self.load_feeds()
            self.wait_converged(timeout=timeout)
        if self.monitor is None:
            self.setup_monitoring(num_flows)
        self.fail_primary()
        self.wait_recovered(timeout=timeout)
        return self.measure()


def build_convergence_lab(
    sim: Simulator,
    num_prefixes: int = 1000,
    supercharged: bool = True,
    **overrides,
) -> ConvergenceLab:
    """Build (but do not start) a :class:`ConvergenceLab`.

    Extra keyword arguments override the corresponding :class:`LabConfig`
    fields, e.g. ``build_convergence_lab(sim, 5000, False, monitored_flows=50)``.
    """
    config = LabConfig(
        num_prefixes=num_prefixes, supercharged=supercharged, **overrides
    )
    return ConvergenceLab(sim, config).build()
