"""The Figure 4 convergence lab.

Rebuilds the paper's hardware testbed in simulation:

* **R1** — the router under test (supercharged or not);
* **R2 / R3** — the primary ($) and backup ($$) providers, both advertising
  the same synthetic full table and both forwarding received traffic to the
  sink;
* **switch** — the OpenFlow switch interconnecting R1, R2, R3 and, in
  supercharged mode, the controller(s);
* **source / sink** — the FPGA traffic boards, reproduced either as real
  packet generators or as the event-driven reachability monitor;
* **controller** — the supercharged controller (optionally two redundant
  replicas) in supercharged mode.

The lab exposes the experiment workflow used throughout the benchmarks:
``build → load_feeds → wait_converged → setup_monitoring → fail_primary →
wait_recovered → measure`` (and ``restore_primary`` between repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bgp.attributes import PathAttributes
from repro.bgp.policy import ImportPolicy
from repro.bgp.speaker import PeerConfig
from repro.core.controller import ControllerConfig, PeerSpec, SuperchargedController
from repro.core.reliability import ControllerCluster
from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.net.links import Link
from repro.openflow.controller_channel import ControllerChannel
from repro.openflow.flow_table import Actions, FlowEntry, FlowMatch
from repro.openflow.switch import OpenFlowSwitch, SwitchConfig
from repro.router.fib_updater import FibUpdaterConfig
from repro.router.router import Router, RouterConfig, StaticRoute
from repro.routes.prefix_gen import PrefixGenerator
from repro.routes.ris_feed import RouteFeed, synthetic_full_table
from repro.sim.engine import Simulator
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import TrafficSource, TrafficSourceConfig
from repro.traffic.monitor import TrafficSink
from repro.traffic.reachability import PathTracer, ReachabilityMonitor


# ----------------------------------------------------------------------
# Addressing plan (constants so tests and docs can refer to them)
# ----------------------------------------------------------------------
CORE_SUBNET = IPv4Prefix("10.0.0.0/24")
R1_CORE_IP = IPv4Address("10.0.0.1")
R2_CORE_IP = IPv4Address("10.0.0.2")
R3_CORE_IP = IPv4Address("10.0.0.3")
CONTROLLER_IP = IPv4Address("10.0.0.100")
CONTROLLER2_IP = IPv4Address("10.0.0.101")
VNH_POOL = IPv4Prefix("10.0.0.128/25")

SOURCE_SUBNET = IPv4Prefix("192.168.1.0/24")
R1_SOURCE_IP = IPv4Address("192.168.1.1")
SOURCE_IP = IPv4Address("192.168.1.2")

SINK_R2_SUBNET = IPv4Prefix("192.168.2.0/30")
R2_SINK_IP = IPv4Address("192.168.2.1")
SINK_R2_IP = IPv4Address("192.168.2.2")

SINK_R3_SUBNET = IPv4Prefix("192.168.3.0/30")
R3_SINK_IP = IPv4Address("192.168.3.1")
SINK_R3_IP = IPv4Address("192.168.3.2")

R1_ASN, R2_ASN, R3_ASN, CONTROLLER_ASN = 65000, 65001, 65002, 64512

R1_CORE_MAC = MacAddress("00:00:00:00:00:01")
R2_CORE_MAC = MacAddress("00:00:00:00:00:02")
R3_CORE_MAC = MacAddress("00:00:00:00:00:03")
CONTROLLER_MAC = MacAddress("00:00:00:00:00:64")
CONTROLLER2_MAC = MacAddress("00:00:00:00:00:65")
R1_SOURCE_MAC = MacAddress("00:00:00:00:01:01")
SOURCE_MAC = MacAddress("00:00:00:00:01:02")
R2_SINK_MAC = MacAddress("00:00:00:00:02:01")
SINK_R2_MAC = MacAddress("00:00:00:00:02:02")
R3_SINK_MAC = MacAddress("00:00:00:00:03:01")
SINK_R3_MAC = MacAddress("00:00:00:00:03:02")

SWITCH_PORT_R1, SWITCH_PORT_R2, SWITCH_PORT_R3 = 1, 2, 3
SWITCH_PORT_CONTROLLER, SWITCH_PORT_CONTROLLER2 = 4, 5


@dataclass
class LabConfig:
    """Everything that varies between experiment runs."""

    num_prefixes: int = 1000
    supercharged: bool = True
    #: PIC ablation: give R1 a hierarchical FIB instead of a flat one.
    hierarchical_fib: bool = False
    #: Redundancy: run two controller replicas (supercharged mode only).
    redundant_controllers: bool = False
    monitored_flows: int = 100
    seed: int = 1
    #: R1 FIB download timing (the knob behind Figure 5's linear curve).
    fib_updater: FibUpdaterConfig = field(default_factory=FibUpdaterConfig)
    #: BFD timing used by whoever does the failure detection.
    bfd_interval: float = 0.03
    bfd_multiplier: int = 3
    #: Switch hardware characteristics.
    switch: SwitchConfig = field(
        default_factory=lambda: SwitchConfig(flow_mod_latency=5e-3, table_miss="flood")
    )
    #: REST call latency between the BGP and SDN controller components.
    rest_latency: float = 2e-3
    #: LOCAL_PREF assigned to routes learned from the primary / backup.
    primary_local_pref: int = 200
    backup_local_pref: int = 100
    #: Also run packet-level traffic (small scenarios only).
    packet_traffic: bool = False
    packet_rate_pps: float = 200.0
    link_latency: float = 10e-6


@dataclass
class FailoverResult:
    """Outcome of one failover run."""

    supercharged: bool
    num_prefixes: int
    failure_time: float
    #: Per-destination data-plane outage in seconds.
    convergence_times: Dict[IPv4Address, float]
    detection_time: Optional[float] = None

    @property
    def samples(self) -> List[float]:
        """All per-destination convergence samples (seconds)."""
        return list(self.convergence_times.values())

    @property
    def max_convergence(self) -> float:
        """Worst-case convergence across monitored destinations."""
        return max(self.samples) if self.samples else 0.0

    @property
    def min_convergence(self) -> float:
        """Best-case convergence across monitored destinations."""
        return min(self.samples) if self.samples else 0.0

    @property
    def max_convergence_ms(self) -> float:
        """Worst-case convergence in milliseconds."""
        return self.max_convergence * 1e3


class ConvergenceLab:
    """The complete evaluation environment."""

    def __init__(self, sim: Simulator, config: LabConfig) -> None:
        self.sim = sim
        self.config = config
        self.switch: Optional[OpenFlowSwitch] = None
        self.r1: Optional[Router] = None
        self.r2: Optional[Router] = None
        self.r3: Optional[Router] = None
        self.controller: Optional[SuperchargedController] = None
        self.cluster: Optional[ControllerCluster] = None
        self.source: Optional[TrafficSource] = None
        self.sink: Optional[TrafficSink] = None
        self.monitor: Optional[ReachabilityMonitor] = None
        self.tracer: Optional[PathTracer] = None
        self.feed_r2: Optional[RouteFeed] = None
        self.feed_r3: Optional[RouteFeed] = None
        self.primary_link: Optional[Link] = None
        self.links: Dict[str, Link] = {}
        self.monitored_destinations: List[IPv4Address] = []
        self._destination_prefix: Dict[IPv4Address, IPv4Prefix] = {}
        self.last_failure_time: Optional[float] = None
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> "ConvergenceLab":
        """Instantiate and wire every device; idempotent."""
        if self._built:
            return self
        self._built = True
        config = self.config
        self.switch = OpenFlowSwitch(self.sim, "sw1", config.switch)
        self._build_routers()
        self._build_traffic_boards()
        self._wire_links()
        # Static routes can only resolve once the sink links exist.
        self.r2.add_static_route(StaticRoute(IPv4Prefix("0.0.0.0/0"), SINK_R2_IP))
        self.r3.add_static_route(StaticRoute(IPv4Prefix("0.0.0.0/0"), SINK_R3_IP))
        self._install_static_switch_rules()
        if config.supercharged:
            self._build_controllers()
        self._configure_control_plane()
        return self

    def _build_routers(self) -> None:
        config = self.config
        r1_bfd = None if config.supercharged else config.bfd_interval
        self.r1 = Router(
            self.sim,
            "R1",
            RouterConfig(
                asn=R1_ASN,
                router_id=R1_CORE_IP,
                fib_updater=config.fib_updater,
                hierarchical_fib=config.hierarchical_fib,
                bfd_interval=r1_bfd,
                bfd_multiplier=config.bfd_multiplier,
            ),
        )
        self.r1.add_interface("core", R1_CORE_MAC, R1_CORE_IP, CORE_SUBNET)
        self.r1.add_interface("to-source", R1_SOURCE_MAC, R1_SOURCE_IP, SOURCE_SUBNET)

        peer_fib = FibUpdaterConfig(first_entry_latency=0.05, per_entry_latency=1e-5)
        self.r2 = Router(
            self.sim,
            "R2",
            RouterConfig(
                asn=R2_ASN,
                router_id=R2_CORE_IP,
                fib_updater=peer_fib,
                bfd_interval=config.bfd_interval,
                bfd_multiplier=config.bfd_multiplier,
            ),
        )
        self.r2.add_interface("core", R2_CORE_MAC, R2_CORE_IP, CORE_SUBNET)
        self.r2.add_interface("to-sink", R2_SINK_MAC, R2_SINK_IP, SINK_R2_SUBNET)

        self.r3 = Router(
            self.sim,
            "R3",
            RouterConfig(
                asn=R3_ASN,
                router_id=R3_CORE_IP,
                fib_updater=peer_fib,
                bfd_interval=config.bfd_interval,
                bfd_multiplier=config.bfd_multiplier,
            ),
        )
        self.r3.add_interface("core", R3_CORE_MAC, R3_CORE_IP, CORE_SUBNET)
        self.r3.add_interface("to-sink", R3_SINK_MAC, R3_SINK_IP, SINK_R3_SUBNET)

    def _build_traffic_boards(self) -> None:
        self.sink = TrafficSink(self.sim, "sink")
        self.sink.add_interface("from-r2", SINK_R2_MAC, SINK_R2_IP, SINK_R2_SUBNET)
        self.sink.add_interface("from-r3", SINK_R3_MAC, SINK_R3_IP, SINK_R3_SUBNET)
        self.source = TrafficSource(
            self.sim,
            "source",
            TrafficSourceConfig(
                ip=SOURCE_IP,
                mac=SOURCE_MAC,
                subnet=SOURCE_SUBNET,
                gateway_ip=R1_SOURCE_IP,
            ),
        )
        self.source.set_gateway_mac(R1_SOURCE_MAC)

    def _wire_links(self) -> None:
        latency = self.config.link_latency
        switch = self.switch
        self.links["r1-sw"] = Link(
            self.sim,
            self.r1.interfaces["core"].port,
            switch.add_port(SWITCH_PORT_R1),
            latency=latency,
            name="r1-sw",
        )
        self.links["r2-sw"] = Link(
            self.sim,
            self.r2.interfaces["core"].port,
            switch.add_port(SWITCH_PORT_R2),
            latency=latency,
            name="r2-sw",
        )
        self.links["r3-sw"] = Link(
            self.sim,
            self.r3.interfaces["core"].port,
            switch.add_port(SWITCH_PORT_R3),
            latency=latency,
            name="r3-sw",
        )
        self.links["src-r1"] = Link(
            self.sim,
            self.source.port,
            self.r1.interfaces["to-source"].port,
            latency=latency,
            name="src-r1",
        )
        self.links["r2-sink"] = Link(
            self.sim,
            self.r2.interfaces["to-sink"].port,
            self.sink.interfaces["from-r2"].port,
            latency=latency,
            name="r2-sink",
        )
        self.links["r3-sink"] = Link(
            self.sim,
            self.r3.interfaces["to-sink"].port,
            self.sink.interfaces["from-r3"].port,
            latency=latency,
            name="r3-sink",
        )
        self.primary_link = self.links["r2-sw"]

    def _install_static_switch_rules(self) -> None:
        """Plain L2 forwarding for the physical MACs (priority below the
        controller's VMAC rules)."""
        rules = [
            (R1_CORE_MAC, SWITCH_PORT_R1),
            (R2_CORE_MAC, SWITCH_PORT_R2),
            (R3_CORE_MAC, SWITCH_PORT_R3),
        ]
        if self.config.supercharged:
            rules.append((CONTROLLER_MAC, SWITCH_PORT_CONTROLLER))
            if self.config.redundant_controllers:
                rules.append((CONTROLLER2_MAC, SWITCH_PORT_CONTROLLER2))
        for mac, port in rules:
            self.switch.flow_table.install(
                FlowEntry(
                    match=FlowMatch(eth_dst=mac),
                    actions=Actions(output_port=port),
                    priority=50,
                )
            )

    def _controller_config(self, ip: IPv4Address, mac: MacAddress) -> ControllerConfig:
        config = self.config
        return ControllerConfig(
            ip=ip,
            mac=mac,
            subnet=CORE_SUBNET,
            asn=CONTROLLER_ASN,
            router_id=ip,
            router_ip=R1_CORE_IP,
            router_asn=R1_ASN,
            vnh_pool=VNH_POOL,
            peers=[
                PeerSpec(
                    ip=R2_CORE_IP,
                    asn=R2_ASN,
                    switch_port=SWITCH_PORT_R2,
                    mac=R2_CORE_MAC,
                    local_pref=config.primary_local_pref,
                ),
                PeerSpec(
                    ip=R3_CORE_IP,
                    asn=R3_ASN,
                    switch_port=SWITCH_PORT_R3,
                    mac=R3_CORE_MAC,
                    local_pref=config.backup_local_pref,
                ),
            ],
            bfd_interval=config.bfd_interval,
            bfd_multiplier=config.bfd_multiplier,
            rest_latency=config.rest_latency,
        )

    def _build_controllers(self) -> None:
        latency = self.config.link_latency
        self.controller = SuperchargedController(
            self.sim, "ctrl1", self._controller_config(CONTROLLER_IP, CONTROLLER_MAC)
        )
        self.links["ctrl1-sw"] = Link(
            self.sim,
            self.controller.port,
            self.switch.add_port(SWITCH_PORT_CONTROLLER),
            latency=latency,
            name="ctrl1-sw",
        )
        channel = ControllerChannel(self.sim, latency=1e-3, name="of:ctrl1")
        self.switch.attach_controller(channel)
        self.controller.attach_switch(channel)
        self.cluster = ControllerCluster(self.sim)
        self.cluster.add_replica(self.controller)
        if self.config.redundant_controllers:
            replica = SuperchargedController(
                self.sim, "ctrl2", self._controller_config(CONTROLLER2_IP, CONTROLLER2_MAC)
            )
            self.links["ctrl2-sw"] = Link(
                self.sim,
                replica.port,
                self.switch.add_port(SWITCH_PORT_CONTROLLER2),
                latency=latency,
                name="ctrl2-sw",
            )
            channel2 = ControllerChannel(self.sim, latency=1e-3, name="of:ctrl2")
            self.switch.attach_controller(channel2)
            replica.attach_switch(channel2)
            self.cluster.add_replica(replica)

    def _configure_control_plane(self) -> None:
        config = self.config
        # R1 is a stub edge router: it never re-exports provider routes (the
        # standard customer export policy), so its sessions are receive-only.
        if config.supercharged:
            controllers = self.cluster.replicas()
            for controller in controllers:
                self.r1.add_bgp_peer(
                    PeerConfig(
                        peer_ip=controller.config.ip,
                        peer_asn=CONTROLLER_ASN,
                        advertise=False,
                    )
                )
            for peer_router in (self.r2, self.r3):
                for controller in controllers:
                    peer_router.add_bgp_peer(
                        PeerConfig(peer_ip=controller.config.ip, peer_asn=CONTROLLER_ASN)
                    )
                    peer_router.add_bfd_peer(controller.config.ip)
        else:
            self.r1.add_bgp_peer(
                PeerConfig(
                    peer_ip=R2_CORE_IP,
                    peer_asn=R2_ASN,
                    import_policy=ImportPolicy.prefer(config.primary_local_pref),
                    advertise=False,
                )
            )
            self.r1.add_bgp_peer(
                PeerConfig(
                    peer_ip=R3_CORE_IP,
                    peer_asn=R3_ASN,
                    import_policy=ImportPolicy.prefer(config.backup_local_pref),
                    advertise=False,
                )
            )
            self.r1.add_bfd_peer(R2_CORE_IP)
            self.r1.add_bfd_peer(R3_CORE_IP)
            self.r2.add_bgp_peer(PeerConfig(peer_ip=R1_CORE_IP, peer_asn=R1_ASN))
            self.r3.add_bgp_peer(PeerConfig(peer_ip=R1_CORE_IP, peer_asn=R1_ASN))
            self.r2.add_bfd_peer(R1_CORE_IP)
            self.r3.add_bfd_peer(R1_CORE_IP)

    # ------------------------------------------------------------------
    # Workflow
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the control plane up (BGP + BFD sessions)."""
        self.r1.start()
        self.r2.start()
        self.r3.start()
        if self.cluster is not None:
            self.cluster.start_all()
        # Let the sessions establish before feeding routes.
        self.run_until(self._sessions_established, timeout=30.0)

    def load_feeds(self) -> None:
        """Generate the synthetic full tables and originate them at R2/R3."""
        count = self.config.num_prefixes
        prefixes = PrefixGenerator(seed=self.config.seed).generate(count)
        self.feed_r2 = synthetic_full_table(
            count, seed=self.config.seed, provider_asn=R2_ASN, prefixes=prefixes
        )
        self.feed_r3 = synthetic_full_table(
            count, seed=self.config.seed + 1, provider_asn=R3_ASN, prefixes=prefixes
        )
        for route in self.feed_r2.routes:
            attributes = PathAttributes(
                next_hop=R2_CORE_IP,
                as_path=route.as_path,
                origin=route.origin,
                med=route.med,
            )
            self.r2.bgp.originate(route.prefix, attributes)
        for route in self.feed_r3.routes:
            attributes = PathAttributes(
                next_hop=R3_CORE_IP,
                as_path=route.as_path,
                origin=route.origin,
                med=route.med,
            )
            self.r3.bgp.originate(route.prefix, attributes)

    def wait_converged(self, timeout: float = 3600.0) -> bool:
        """Run the simulation until R1's control plane and FIB are loaded."""
        return self.run_until(self._initially_converged, timeout=timeout)

    def setup_monitoring(self, num_flows: Optional[int] = None) -> None:
        """Select monitored destinations and attach the measurement hooks."""
        count = num_flows if num_flows is not None else self.config.monitored_flows
        self._select_destinations(count)
        registry = self._port_registry()
        self.tracer = PathTracer(
            node_by_port=registry,
            start_port=self.source.port,
            first_hop_mac=lambda: R1_SOURCE_MAC,
        )
        self.monitor = ReachabilityMonitor(self.sim, self.tracer)
        for destination in self.monitored_destinations:
            self.monitor.watch(destination, self._destination_prefix[destination])
        self.r1.fib_updater.on_entry_applied(
            lambda prefix, adjacency, when: self.monitor.notify_prefix_change(prefix)
        )
        self.r1.on_fib_changed(
            lambda prefix: self.monitor.notify_prefix_change(prefix)
            if prefix is not None
            else self.monitor.notify_forwarding_change()
        )
        self.switch.on_flow_mod_applied(
            lambda flow_mod: self.monitor.notify_forwarding_change()
        )
        self.monitor.evaluate_all()
        if self.config.packet_traffic:
            for destination in self.monitored_destinations:
                self.sink.monitor(destination)
                self.source.add_flow(
                    FlowSpec(destination=destination, rate_pps=self.config.packet_rate_pps)
                )

    def fail_primary(self) -> float:
        """Disconnect R2 from the switch (the paper's failure event)."""
        self.last_failure_time = self.sim.now
        self.primary_link.fail()
        if self.monitor is not None:
            self.monitor.notify_forwarding_change()
        return self.last_failure_time

    def wait_recovered(self, timeout: float = 3600.0, settle: float = 0.5) -> bool:
        """Run until every monitored destination is reachable again."""
        recovered = self.run_until(self._all_reachable, timeout=timeout)
        self.sim.run_for(settle)
        return recovered

    def measure(self) -> FailoverResult:
        """Collect per-destination convergence times for the last failure."""
        if self.monitor is None or self.last_failure_time is None:
            raise RuntimeError("setup_monitoring() and fail_primary() must run first")
        times = self.monitor.convergence_times(self.last_failure_time)
        detection = None
        detector = self._failure_detector_session()
        if detector is not None:
            detection = detector.last_state_change - self.last_failure_time
        return FailoverResult(
            supercharged=self.config.supercharged,
            num_prefixes=self.config.num_prefixes,
            failure_time=self.last_failure_time,
            convergence_times=times,
            detection_time=detection,
        )

    def restore_primary(self, timeout: float = 3600.0) -> bool:
        """Reconnect R2, re-open its BGP sessions and wait for steady state."""
        self.primary_link.restore()
        if self.monitor is not None:
            self.monitor.notify_forwarding_change()
        # Both ends of each torn session must be administratively restarted.
        if self.config.supercharged:
            for controller in self.cluster.healthy_replicas():
                controller.restart_peer(R2_CORE_IP)
                self.r2.bgp.start_peer(controller.config.ip)
        else:
            self.r1.bgp.start_peer(R2_CORE_IP)
            self.r2.bgp.start_peer(R1_CORE_IP)
        recovered = self.run_until(self._initially_converged, timeout=timeout)
        if self.monitor is not None:
            self.monitor.reset()
        return recovered

    def run_single_failover(self, timeout: float = 3600.0) -> FailoverResult:
        """Fail the primary, wait for recovery and return the measurement.

        Assumes the lab is already started, loaded, converged and monitored
        (use :meth:`run_failover` for the end-to-end convenience wrapper).
        """
        self.fail_primary()
        self.wait_recovered(timeout=timeout)
        return self.measure()

    def run_failover(
        self, num_flows: Optional[int] = None, timeout: float = 3600.0
    ) -> FailoverResult:
        """Convenience wrapper running the full workflow once."""
        if not self._built:
            self.build()
        if not self.r1.bgp.established_peers():
            self.start()
            self.load_feeds()
            self.wait_converged(timeout=timeout)
        if self.monitor is None:
            self.setup_monitoring(num_flows)
        self.fail_primary()
        self.wait_recovered(timeout=timeout)
        return self.measure()

    # ------------------------------------------------------------------
    # Simulation helpers
    # ------------------------------------------------------------------
    def run_until(
        self, condition: Callable[[], bool], timeout: float, step: float = 0.25
    ) -> bool:
        """Advance simulated time in ``step`` increments until ``condition``."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if condition():
                return True
            self.sim.run_for(min(step, deadline - self.sim.now))
        return condition()

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _sessions_established(self) -> bool:
        if self.config.supercharged:
            controllers = self.cluster.healthy_replicas()
            for controller in controllers:
                expected = {R2_CORE_IP, R3_CORE_IP, R1_CORE_IP}
                if set(controller.bgp.established_peers()) != expected:
                    return False
            return len(self.r1.bgp.established_peers()) >= 1
        return (
            set(self.r1.bgp.established_peers()) == {R2_CORE_IP, R3_CORE_IP}
            and R1_CORE_IP in self.r2.bgp.established_peers()
            and R1_CORE_IP in self.r3.bgp.established_peers()
        )

    def _bfd_ready(self) -> bool:
        """Whether the failure detectors protecting the experiment are Up."""
        if self.config.supercharged:
            for controller in self.cluster.healthy_replicas():
                for peer_ip in (R2_CORE_IP, R3_CORE_IP):
                    session = controller.bfd.session(peer_ip)
                    if session is None or not session.is_up:
                        return False
            return True
        for peer_ip in (R2_CORE_IP, R3_CORE_IP):
            session = self.r1.bfd.session(peer_ip) if self.r1.bfd else None
            if session is None or not session.is_up:
                return False
        return True

    def _initially_converged(self) -> bool:
        expected = self.config.num_prefixes
        if not self._bfd_ready():
            return False
        if len(self.r1.bgp.loc_rib) < expected:
            return False
        if self.config.supercharged:
            for controller in self.cluster.healthy_replicas():
                if len(controller.bgp.loc_rib) < expected:
                    return False
        if self.r1.fib_updater.is_busy or self.r1.fib_updater.queue_depth:
            return False
        if len(self.r1.fib) < expected:
            return False
        if not self.config.supercharged:
            # Steady state means traffic is routed via the preferred provider.
            sample = self.feed_r2.routes[0].prefix if self.feed_r2 else None
            if sample is not None:
                entry = self.r1.fib.entry(sample)
                if entry is None or entry.adjacency.next_hop_ip != R2_CORE_IP:
                    return False
        return True

    def _all_reachable(self) -> bool:
        if self.monitor is None:
            return True
        return all(
            self.monitor.is_reachable(destination)
            for destination in self.monitored_destinations
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select_destinations(self, count: int) -> None:
        """Pick ``count`` destinations among the advertised prefixes,
        always including the first and last prefix (as the paper does)."""
        if self.feed_r2 is None:
            raise RuntimeError("load_feeds() must run before setup_monitoring()")
        prefixes = self.feed_r2.prefixes()
        chosen: List[IPv4Prefix] = []
        if prefixes:
            chosen.append(prefixes[0])
        if len(prefixes) > 1:
            chosen.append(prefixes[-1])
        remaining = max(count - len(chosen), 0)
        middle = prefixes[1:-1] if len(prefixes) > 2 else []
        if middle and remaining:
            picked = self.sim.random.sample(middle, min(remaining, len(middle)))
            chosen.extend(picked)
        self.monitored_destinations = []
        self._destination_prefix = {}
        for prefix in chosen:
            destination = IPv4Address(prefix.network.value + 1)
            self.monitored_destinations.append(destination)
            self._destination_prefix[destination] = prefix

    def _port_registry(self) -> Dict[int, object]:
        registry: Dict[int, object] = {}
        for router in (self.r1, self.r2, self.r3):
            for interface in router.interfaces.values():
                registry[id(interface.port)] = router
        for port in self.switch.ports().values():
            registry[id(port)] = self.switch
        for interface in self.sink.interfaces.values():
            registry[id(interface.port)] = self.sink
        if self.cluster is not None:
            for controller in self.cluster.replicas():
                registry[id(controller.port)] = controller
        return registry

    def _failure_detector_session(self):
        if self.config.supercharged:
            if self.cluster is None:
                return None
            for controller in self.cluster.healthy_replicas():
                session = controller.bfd.session(R2_CORE_IP)
                if session is not None:
                    return session
            return None
        if self.r1.bfd is None:
            return None
        return self.r1.bfd.session(R2_CORE_IP)


def build_convergence_lab(
    sim: Simulator,
    num_prefixes: int = 1000,
    supercharged: bool = True,
    **overrides,
) -> ConvergenceLab:
    """Build (but do not start) a :class:`ConvergenceLab`.

    Extra keyword arguments override the corresponding :class:`LabConfig`
    fields, e.g. ``build_convergence_lab(sim, 5000, False, monitored_flows=50)``.
    """
    config = LabConfig(
        num_prefixes=num_prefixes, supercharged=supercharged, **overrides
    )
    return ConvergenceLab(sim, config).build()
