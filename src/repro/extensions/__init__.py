"""Other router aspects that can be "supercharged" (paper §1).

Besides convergence, the paper sketches two further uses of the 2-stage
forwarding table:

* **FIB caching** (:mod:`repro.extensions.fib_cache`) — keep only
  aggregated covering prefixes in the router and resolve the popular
  specifics in the switch, ViAggre-style, extending the effective FIB size
  of an old router.
* **Load balancing** (:mod:`repro.extensions.load_balancing`) — overwrite
  the router's poor static-hash ECMP decisions by re-splitting the tagged
  traffic across next hops in the switch.

Both are implemented against the same substrates as the main contribution
so their benefit can be quantified with the included benchmarks.
"""

from repro.extensions.fib_cache import CacheDecision, FibCacheSupercharger, FibCacheStats
from repro.extensions.load_balancing import (
    HashEcmpRouter,
    LoadBalancingSupercharger,
    LoadReport,
)

__all__ = [
    "CacheDecision",
    "FibCacheSupercharger",
    "FibCacheStats",
    "HashEcmpRouter",
    "LoadBalancingSupercharger",
    "LoadReport",
]
