"""FIB-cache supercharging (ViAggre-style, paper §1).

The router's FIB is too small for a full table, so it only holds coarse
*covering* prefixes whose virtual next hop tags the traffic; the SDN
switch holds exact-match rules for the *popular* specific prefixes and
rewrites them to the correct real next hop, while unpopular specifics fall
back to the covering prefix's default next hop.

The class below decides the split (which prefixes live where), programs
the two tables, and accounts for hit rates so the benefit can be measured
(correctly-routed share of traffic vs router-FIB size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.router.fib import Adjacency, FlatFib, LpmTable


@dataclass(frozen=True)
class CacheDecision:
    """Placement decision for one specific prefix."""

    prefix: IPv4Prefix
    in_switch: bool
    next_hop: IPv4Address


@dataclass
class FibCacheStats:
    """Traffic accounting of the split FIB."""

    switch_hits: int = 0
    router_fallbacks: int = 0
    misrouted: int = 0

    @property
    def total(self) -> int:
        """Total number of forwarding decisions evaluated."""
        return self.switch_hits + self.router_fallbacks

    @property
    def correct_fraction(self) -> float:
        """Share of lookups that reached the intended next hop."""
        if self.total == 0:
            return 1.0
        return 1.0 - (self.misrouted / self.total)


class FibCacheSupercharger:
    """Splits a full table between a small router FIB and a switch cache.

    Parameters
    ----------
    router_capacity:
        Maximum number of (covering) entries the router FIB may hold.
    switch_capacity:
        Maximum number of exact-match cache rules in the switch.
    covering_length:
        Mask length of the covering aggregates installed in the router.
    """

    def __init__(
        self,
        router_capacity: int,
        switch_capacity: int,
        covering_length: int = 10,
    ) -> None:
        if router_capacity <= 0 or switch_capacity <= 0:
            raise ValueError("capacities must be positive")
        if not 0 <= covering_length <= 24:
            raise ValueError(f"covering_length out of range: {covering_length}")
        self.router_capacity = router_capacity
        self.switch_capacity = switch_capacity
        self.covering_length = covering_length
        #: Covering prefix -> default (fallback) next hop.
        self.router_fib: Dict[IPv4Prefix, IPv4Address] = {}
        #: Specific prefix -> real next hop (the switch cache).
        self.switch_cache: Dict[IPv4Prefix, IPv4Address] = {}
        self._truth: LpmTable[IPv4Address] = LpmTable()
        self.stats = FibCacheStats()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(
        self,
        routes: Sequence[Tuple[IPv4Prefix, IPv4Address]],
        popularity: Optional[Dict[IPv4Prefix, float]] = None,
    ) -> List[CacheDecision]:
        """Decide where every route lives.

        ``popularity`` (higher = more traffic) drives which specifics get a
        switch rule; missing values default to 0.
        """
        popularity = popularity or {}
        decisions: List[CacheDecision] = []
        self.router_fib.clear()
        self.switch_cache.clear()
        self._truth = LpmTable()
        for prefix, next_hop in routes:
            self._truth.insert(prefix, next_hop)
            covering = self._covering_of(prefix)
            if covering not in self.router_fib:
                if len(self.router_fib) >= self.router_capacity:
                    raise ValueError(
                        "router FIB capacity exceeded even by covering prefixes; "
                        "use a shorter covering_length"
                    )
                self.router_fib[covering] = next_hop
        ranked = sorted(routes, key=lambda item: -popularity.get(item[0], 0.0))
        for prefix, next_hop in ranked:
            in_switch = False
            if len(self.switch_cache) < self.switch_capacity:
                fallback = self.router_fib[self._covering_of(prefix)]
                if fallback != next_hop:
                    self.switch_cache[prefix] = next_hop
                    in_switch = True
            decisions.append(
                CacheDecision(prefix=prefix, in_switch=in_switch, next_hop=next_hop)
            )
        return decisions

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def forward(self, destination: IPv4Address) -> Optional[IPv4Address]:
        """Resolve a destination through the split FIB, recording statistics.

        Returns the next hop the combined system would use, or ``None``
        when not even a covering prefix matches.
        """
        cached = self._lookup_cache(destination)
        truth = self._truth.lookup(destination)
        intended = truth[1] if truth is not None else None
        if cached is not None:
            self.stats.switch_hits += 1
            if intended is not None and cached != intended:
                self.stats.misrouted += 1
            return cached
        fallback = self._lookup_router(destination)
        if fallback is None:
            return None
        self.stats.router_fallbacks += 1
        if intended is not None and fallback != intended:
            self.stats.misrouted += 1
        return fallback

    def router_entries(self) -> int:
        """Number of entries consumed in the router FIB."""
        return len(self.router_fib)

    def switch_entries(self) -> int:
        """Number of cache rules consumed in the switch."""
        return len(self.switch_cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _covering_of(self, prefix: IPv4Prefix) -> IPv4Prefix:
        length = min(self.covering_length, prefix.length)
        return IPv4Prefix(prefix.network, length)

    def _lookup_cache(self, destination: IPv4Address) -> Optional[IPv4Address]:
        best: Optional[Tuple[int, IPv4Address]] = None
        for prefix, next_hop in self.switch_cache.items():
            if prefix.contains(destination):
                if best is None or prefix.length > best[0]:
                    best = (prefix.length, next_hop)
        return best[1] if best is not None else None

    def _lookup_router(self, destination: IPv4Address) -> Optional[IPv4Address]:
        best: Optional[Tuple[int, IPv4Address]] = None
        for prefix, next_hop in self.router_fib.items():
            if prefix.contains(destination):
                if best is None or prefix.length > best[0]:
                    best = (prefix.length, next_hop)
        return best[1] if best is not None else None
