"""Load-balancing supercharging (paper §1).

Routers split ECMP traffic with a static, stateless hash of the flow
5-tuple; when the hash is a poor fit for the offered traffic the split is
uneven.  The SDN switch sitting next to the router can observe the actual
per-flow rates and re-balance: it overrides the router's hash decision for
the heaviest flows by rewriting their next hop as they traverse the
switch.

:class:`HashEcmpRouter` models the router's static-hash behaviour, and
:class:`LoadBalancingSupercharger` computes the minimal set of flow
overrides that brings the per-next-hop load within a target imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.addresses import IPv4Address


@dataclass(frozen=True)
class Flow:
    """A 5-tuple flow with an offered rate."""

    src: IPv4Address
    dst: IPv4Address
    src_port: int
    dst_port: int
    rate: float

    @property
    def key(self) -> Tuple[int, int, int, int]:
        """Hashable flow identity."""
        return (self.src.value, self.dst.value, self.src_port, self.dst_port)


@dataclass
class LoadReport:
    """Per-next-hop load before/after supercharging."""

    next_hops: List[IPv4Address]
    load_before: Dict[IPv4Address, float]
    load_after: Dict[IPv4Address, float]
    overrides: Dict[Tuple[int, int, int, int], IPv4Address] = field(default_factory=dict)

    @staticmethod
    def imbalance(load: Dict[IPv4Address, float]) -> float:
        """Max/mean load ratio (1.0 = perfectly balanced)."""
        values = list(load.values())
        if not values or sum(values) == 0:
            return 1.0
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 1.0

    @property
    def imbalance_before(self) -> float:
        """Imbalance produced by the router's static hash."""
        return self.imbalance(self.load_before)

    @property
    def imbalance_after(self) -> float:
        """Imbalance after the switch overrides."""
        return self.imbalance(self.load_after)


class HashEcmpRouter:
    """Static-hash ECMP: each flow is pinned to ``hash(flow) % n`` next hops."""

    def __init__(self, next_hops: Sequence[IPv4Address], salt: int = 0) -> None:
        if not next_hops:
            raise ValueError("at least one next hop is required")
        self.next_hops = list(next_hops)
        self.salt = salt

    def pick(self, flow: Flow) -> IPv4Address:
        """The next hop the router's hardware hash selects for ``flow``."""
        digest = self._hash(flow)
        return self.next_hops[digest % len(self.next_hops)]

    def load(self, flows: Sequence[Flow]) -> Dict[IPv4Address, float]:
        """Aggregate offered load per next hop under the static hash."""
        totals = {next_hop: 0.0 for next_hop in self.next_hops}
        for flow in flows:
            totals[self.pick(flow)] += flow.rate
        return totals

    def _hash(self, flow: Flow) -> int:
        # A deliberately crude multiplicative hash: real line-card hashes are
        # similarly static and can correlate badly with the traffic matrix.
        value = self.salt
        for part in flow.key:
            value = (value * 1_000_003 + part) & 0xFFFFFFFF
        return value


class LoadBalancingSupercharger:
    """Computes switch-side overrides that even out the ECMP load."""

    def __init__(self, router: HashEcmpRouter, max_overrides: int = 64) -> None:
        if max_overrides < 0:
            raise ValueError(f"max_overrides must be non-negative, got {max_overrides}")
        self.router = router
        self.max_overrides = max_overrides

    def rebalance(self, flows: Sequence[Flow]) -> LoadReport:
        """Greedy re-balancing: repeatedly move the largest movable flow
        from the most loaded next hop to the least loaded one."""
        assignment: Dict[Tuple[int, int, int, int], IPv4Address] = {
            flow.key: self.router.pick(flow) for flow in flows
        }
        load_before = self.router.load(flows)
        load = dict(load_before)
        overrides: Dict[Tuple[int, int, int, int], IPv4Address] = {}
        flows_by_rate = sorted(flows, key=lambda flow: -flow.rate)
        for _ in range(self.max_overrides):
            if not load:
                break
            heaviest = max(load, key=lambda nh: load[nh])
            lightest = min(load, key=lambda nh: load[nh])
            if load[heaviest] - load[lightest] <= 1e-9:
                break
            gap = load[heaviest] - load[lightest]
            candidate = None
            for flow in flows_by_rate:
                if assignment[flow.key] != heaviest or flow.key in overrides:
                    continue
                # Moving more than the gap would overshoot and oscillate.
                if flow.rate <= gap:
                    candidate = flow
                    break
            if candidate is None:
                break
            assignment[candidate.key] = lightest
            overrides[candidate.key] = lightest
            load[heaviest] -= candidate.rate
            load[lightest] += candidate.rate
        load_after = {next_hop: 0.0 for next_hop in self.router.next_hops}
        for flow in flows:
            load_after[assignment[flow.key]] += flow.rate
        return LoadReport(
            next_hops=list(self.router.next_hops),
            load_before=load_before,
            load_after=load_after,
            overrides=overrides,
        )
