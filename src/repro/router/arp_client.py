"""ARP client: resolve next-hop IPs to MACs, queueing work until resolved.

The supercharged router resolves the controller's virtual next hops with
exactly this machinery — from the router's point of view a VNH is just
another neighbor on the connected subnet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.arp.cache import ArpCache
from repro.arp.protocol import build_arp_request
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.interfaces import Interface
from repro.net.packets import ArpOp, ArpPacket
from repro.sim.engine import Simulator


class ArpClient:
    """Per-router ARP resolution with pending-callback queues and retries."""

    def __init__(
        self,
        sim: Simulator,
        cache: ArpCache,
        retry_interval: float = 1.0,
        max_retries: int = 3,
    ) -> None:
        self._sim = sim
        self._cache = cache
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self._pending: Dict[IPv4Address, List[Callable[[Optional[MacAddress]], None]]] = {}
        self._attempts: Dict[IPv4Address, int] = {}
        self.requests_sent = 0

    def resolve(
        self,
        ip: IPv4Address,
        interface: Interface,
        callback: Callable[[Optional[MacAddress]], None],
    ) -> None:
        """Resolve ``ip`` on ``interface``; the callback receives the MAC or
        ``None`` after ``max_retries`` unanswered requests."""
        cached = self._cache.lookup(ip, self._sim.now)
        if cached is not None:
            callback(cached)
            return
        queue = self._pending.setdefault(ip, [])
        queue.append(callback)
        if len(queue) == 1:
            self._attempts[ip] = 0
            self._send_request(ip, interface)

    def cached(self, ip: IPv4Address) -> Optional[MacAddress]:
        """Non-blocking cache lookup."""
        return self._cache.lookup(ip, self._sim.now)

    def handle_reply(self, packet: ArpPacket) -> None:
        """Feed a received ARP packet (reply *or* request) into the client;
        any pending resolutions for the sender IP complete."""
        if packet.op not in (ArpOp.REPLY, ArpOp.REQUEST):
            return
        self._cache.learn(packet.sender_ip, packet.sender_mac, self._sim.now)
        waiting = self._pending.pop(packet.sender_ip, [])
        self._attempts.pop(packet.sender_ip, None)
        for callback in waiting:
            callback(packet.sender_mac)

    def _send_request(self, ip: IPv4Address, interface: Interface) -> None:
        if ip not in self._pending:
            return
        attempts = self._attempts.get(ip, 0)
        if attempts >= self.max_retries:
            waiting = self._pending.pop(ip, [])
            self._attempts.pop(ip, None)
            for callback in waiting:
                callback(None)
            return
        self._attempts[ip] = attempts + 1
        self.requests_sent += 1
        frame = build_arp_request(
            sender_mac=interface.mac,
            sender_ip=interface.ip,
            target_ip=ip,
        )
        interface.port.send(frame)
        self._sim.schedule(
            self.retry_interval,
            lambda: self._send_request(ip, interface),
            name="arp-retry",
        )
