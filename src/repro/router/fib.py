"""Forwarding Information Base structures.

Two FIB organisations are provided, mirroring the paper's Figure 1/2
discussion:

* :class:`FlatFib` — every prefix stores its own L2 adjacency (next-hop
  MAC + output port).  Rewriting the adjacency of many prefixes therefore
  requires touching every entry, which is why the standalone router
  converges linearly in the number of prefixes.
* :class:`HierarchicalFib` — prefixes store a *pointer* into a shared
  adjacency table (BGP PIC).  Repointing one adjacency instantly redirects
  every dependent prefix; this is the expensive-hardware alternative the
  supercharged design replicates across two devices.

Both are built on :class:`LpmTable`, a binary trie keyed on prefix bits
providing longest-prefix-match lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress

ValueT = TypeVar("ValueT")


@dataclass(frozen=True)
class Adjacency:
    """An L2 next hop: destination MAC plus output interface name."""

    mac: MacAddress
    interface: str
    next_hop_ip: Optional[IPv4Address] = None


@dataclass(frozen=True)
class FibEntry:
    """One prefix's forwarding state as seen by the data plane."""

    prefix: IPv4Prefix
    adjacency: Adjacency
    updated_at: float = 0.0


class _TrieNode(Generic[ValueT]):
    """Node of the binary LPM trie."""

    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[ValueT]"]] = [None, None]
        self.value: Optional[ValueT] = None
        self.has_value = False


class LpmTable(Generic[ValueT]):
    """Binary trie mapping IPv4 prefixes to arbitrary values with LPM lookup."""

    def __init__(self) -> None:
        self._root: _TrieNode[ValueT] = _TrieNode()
        self._count = 0

    @staticmethod
    def _bits(prefix: IPv4Prefix) -> Iterator[int]:
        network = prefix.network.value
        for position in range(prefix.length):
            yield (network >> (31 - position)) & 1

    def insert(self, prefix: IPv4Prefix, value: ValueT) -> bool:
        """Insert or replace; returns ``True`` when the prefix was new."""
        node = self._root
        for bit in self._bits(prefix):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        was_new = not node.has_value
        node.value = value
        node.has_value = True
        if was_new:
            self._count += 1
        return was_new

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Remove the exact prefix; returns whether it was present."""
        node = self._root
        for bit in self._bits(prefix):
            if node.children[bit] is None:
                return False
            node = node.children[bit]
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._count -= 1
        return True

    def exact(self, prefix: IPv4Prefix) -> Optional[ValueT]:
        """Value stored for exactly this prefix, if any."""
        node = self._root
        for bit in self._bits(prefix):
            if node.children[bit] is None:
                return None
            node = node.children[bit]
        return node.value if node.has_value else None

    def lookup(self, address: IPv4Address) -> Optional[Tuple[IPv4Prefix, ValueT]]:
        """Longest-prefix match for ``address``."""
        node = self._root
        best: Optional[Tuple[int, ValueT]] = None
        value = address.value
        depth = 0
        if node.has_value:
            best = (0, node.value)
        while depth < 32:
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        length, matched_value = best
        masked = value & IPv4Prefix.mask_for(length)
        return IPv4Prefix(IPv4Address(masked), length), matched_value

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.exact(prefix) is not None


class FlatFib:
    """Flat FIB: prefix → private adjacency copy (paper Figure 1)."""

    def __init__(self) -> None:
        self._table: LpmTable[FibEntry] = LpmTable()
        self._prefixes: Dict[IPv4Prefix, FibEntry] = {}

    # ------------------------------------------------------------------
    # Mutation (the data-plane write; timing is owned by the FibUpdater)
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, adjacency: Adjacency, now: float = 0.0) -> FibEntry:
        """Install or overwrite the entry for ``prefix``."""
        entry = FibEntry(prefix=prefix, adjacency=adjacency, updated_at=now)
        self._table.insert(prefix, entry)
        self._prefixes[prefix] = entry
        return entry

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove the entry for ``prefix``; returns whether it existed."""
        self._prefixes.pop(prefix, None)
        return self._table.remove(prefix)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """Longest-prefix-match forwarding decision for ``address``."""
        result = self._table.lookup(address)
        return result[1] if result is not None else None

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix``."""
        return self._prefixes.get(prefix)

    def entries(self) -> Iterator[FibEntry]:
        """Iterate all installed entries."""
        return iter(self._prefixes.values())

    def prefixes_using(self, mac: MacAddress) -> List[IPv4Prefix]:
        """All prefixes whose adjacency points at ``mac`` (diagnostics)."""
        return [p for p, e in self._prefixes.items() if e.adjacency.mac == mac]

    def __len__(self) -> int:
        return len(self._prefixes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefixes


class HierarchicalFib:
    """PIC-style hierarchical FIB: prefix → pointer → shared adjacency.

    Used as the "expensive line-card" baseline in the ablation experiments:
    repointing a shared adjacency converges every dependent prefix at once.
    """

    def __init__(self) -> None:
        self._table: LpmTable[int] = LpmTable()
        self._prefix_pointer: Dict[IPv4Prefix, int] = {}
        self._adjacencies: Dict[int, Adjacency] = {}
        self._next_pointer = 1
        self._updated_at: Dict[IPv4Prefix, float] = {}

    # ------------------------------------------------------------------
    # Adjacency (pointer) management
    # ------------------------------------------------------------------
    def add_adjacency(self, adjacency: Adjacency) -> int:
        """Register a shared adjacency, returning its pointer id."""
        pointer = self._next_pointer
        self._next_pointer += 1
        self._adjacencies[pointer] = adjacency
        return pointer

    def repoint(self, pointer: int, adjacency: Adjacency) -> None:
        """Atomically replace the adjacency behind ``pointer``.

        This is the constant-time convergence operation PIC provides.
        """
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._adjacencies[pointer] = adjacency

    def adjacency(self, pointer: int) -> Adjacency:
        """The adjacency currently behind ``pointer``."""
        return self._adjacencies[pointer]

    def pointers(self) -> Dict[int, Adjacency]:
        """All pointers and their adjacencies."""
        return dict(self._adjacencies)

    # ------------------------------------------------------------------
    # Prefix entries
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, pointer: int, now: float = 0.0) -> None:
        """Install or move ``prefix`` onto ``pointer``."""
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._table.insert(prefix, pointer)
        self._prefix_pointer[prefix] = pointer
        self._updated_at[prefix] = now

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove ``prefix``; returns whether it existed."""
        self._prefix_pointer.pop(prefix, None)
        self._updated_at.pop(prefix, None)
        return self._table.remove(prefix)

    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """LPM forwarding decision (pointer resolved to its adjacency)."""
        result = self._table.lookup(address)
        if result is None:
            return None
        prefix, pointer = result
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix`` (pointer resolved)."""
        pointer = self._prefix_pointer.get(prefix)
        if pointer is None:
            return None
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def pointer_of(self, prefix: IPv4Prefix) -> Optional[int]:
        """Pointer id used by ``prefix``, if installed."""
        return self._prefix_pointer.get(prefix)

    def __len__(self) -> int:
        return len(self._prefix_pointer)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefix_pointer
