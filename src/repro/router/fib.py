"""Forwarding Information Base structures.

Two FIB organisations are provided, mirroring the paper's Figure 1/2
discussion:

* :class:`FlatFib` — every prefix stores its own L2 adjacency (next-hop
  MAC + output port).  Rewriting the adjacency of many prefixes therefore
  requires touching every entry, which is why the standalone router
  converges linearly in the number of prefixes.
* :class:`HierarchicalFib` — prefixes store a *pointer* into a shared
  adjacency table (BGP PIC).  Repointing one adjacency instantly redirects
  every dependent prefix; this is the expensive-hardware alternative the
  supercharged design replicates across two devices.

Both are built on :class:`LpmTable`, a *path-compressed* binary trie
(radix tree) providing longest-prefix-match lookups.  Each node carries
its full masked network and depth, so walks compare whole bit segments
with integer xor/shift instead of descending one node per bit, and chains
with no branch points collapse into a single edge — a 100k-prefix table
allocates ~2 nodes per stored prefix rather than one per bit.

Two auxiliary structures keep the table fast at DFZ scale (ROADMAP
item 2; see docs/performance.md):

* a **per-length hash assist** — one ``{network: node}`` dict per active
  mask length.  ``exact`` and ``remove`` become O(1) dict probes, and on
  *dense* tables (few distinct lengths, the shape of a provider edge
  table) ``lookup`` probes the active lengths longest-first instead of
  walking the trie, which beats the pointer chase by a wide margin;
* **lazy, amortised deletes** — ``remove`` only blanks the node (O(1))
  and defers branch pruning until enough dead nodes have accumulated,
  when one linear compaction pass restores full path compression.  This
  fixes the churn regression where eager per-delete pruning paid more
  than the rescan it replaced, while still keeping long insert/delete
  churn (RIS replay) memory-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress

ValueT = TypeVar("ValueT")


@dataclass(frozen=True)
class Adjacency:
    """An L2 next hop: destination MAC plus output interface name."""

    mac: MacAddress
    interface: str
    next_hop_ip: Optional[IPv4Address] = None


@dataclass(frozen=True)
class FibEntry:
    """One prefix's forwarding state as seen by the data plane."""

    prefix: IPv4Prefix
    adjacency: Adjacency
    updated_at: float = 0.0


# Trie nodes are plain 7-slot lists — C-speed index access beats attribute
# access on the per-level hot path, and a list literal is the cheapest
# allocation Python offers (node churn is constant during RIS replay).
# Layout: [net, plen, child0, child1, value, has_value, prefix]; the child
# for bit b lives at index 2 + b.  ``net``/``plen`` are the node's full
# masked network and depth: a child may sit many bits below its parent
# (the compressed chain), and the skipped segment is verified with one
# xor/shift instead of a per-bit walk.  The canonical IPv4Prefix object is
# kept in the node so a lookup returns it without allocating anything.
_NET = 0
_PLEN = 1
_CHILD = 2  # child for bit b is node[_CHILD + b]
_VALUE = 4
_HAS_VALUE = 5
_PREFIX = 6


def _new_node(net: int, plen: int) -> list:
    return [net, plen, None, None, None, False, None]


#: Netmask per prefix length (index = length), shared by the hash-probe
#: lookup.  Matches :data:`repro.routes.prefixcodec.MASKS`.
_MASKS: Tuple[int, ...] = tuple(IPv4Prefix.mask_for(plen) for plen in range(33))

#: Length shift/mask of the integer prefix coding (see routes/prefixcodec).
_CODE_SHIFT = 6
_CODE_LEN_MASK = (1 << _CODE_SHIFT) - 1


def _compress(node: list) -> Optional[list]:
    """Post-order compaction: drop dead leaves, splice dead pass-throughs.

    Returns the subtree's replacement root (``None`` when it vanished).
    Recursion is safe: node depths strictly increase along a path and a
    depth is 0..32, so the stack never exceeds 33 frames.
    """
    child = node[2]
    if child is not None:
        node[2] = _compress(child)
    child = node[3]
    if child is not None:
        node[3] = _compress(child)
    if node[5]:
        return node
    left = node[2]
    right = node[3]
    if left is not None and right is not None:
        return node  # dead but still a real branch point
    return left if left is not None else right


class LpmTable(Generic[ValueT]):
    """Path-compressed binary trie mapping IPv4 prefixes to values with LPM lookup.

    Alongside the trie it maintains the per-length hash assist (one
    ``{network: node}`` dict per active mask length) giving O(1)
    ``exact``/``remove`` and hash-probe ``lookup`` on dense tables, plus
    the lazy-delete machinery described in the module docstring.  The
    ``*_code`` variants take integer-coded prefixes (routes/prefixcodec)
    and never materialise a prefix object on the way in — the storage key
    of the full-DFZ scale path.
    """

    #: Above this many active mask lengths the longest-first hash probe
    #: can lose to the trie walk (a miss probes every length), so
    #: ``lookup`` falls back to the pointer chase.  DFZ-shaped tables
    #: (/8../24 plus a tail) sit at or below it.
    HASH_LOOKUP_MAX_LENGTHS = 25

    #: Lazy deletes below this count never trigger an in-``remove``
    #: compaction; small tables compact only via ``node_count``.
    PRUNE_FLOOR = 4096

    def __init__(self) -> None:
        self._root: list = _new_node(0, 0)
        self._count = 0
        # Per-length hash assist: plen -> {masked network -> node}.
        self._len_maps: Dict[int, Dict[int, list]] = {}
        # Active mask lengths, longest first (the LPM probe order).
        self._lengths: List[int] = []
        # Valueless nodes left behind by lazy removes, awaiting compaction.
        self._dead = 0

    def insert(self, prefix: IPv4Prefix, value: ValueT) -> bool:
        """Insert or replace; returns ``True`` when the prefix was new."""
        return self._insert(prefix.network.value, prefix.length, value, prefix)

    def insert_code(self, code: int, value: ValueT) -> bool:
        """:meth:`insert` keyed by an integer-coded prefix (no object)."""
        return self._insert(code >> _CODE_SHIFT, code & _CODE_LEN_MASK, value, None)

    def _insert(
        self, net: int, plen: int, value: ValueT, prefix: Optional[IPv4Prefix]
    ) -> bool:
        node = self._root
        target = None
        while True:
            node_plen = node[1]
            if node_plen == plen:
                # By construction node[_NET] == net here.
                if node[5]:
                    node[4] = value
                    node[6] = prefix
                    return False  # replacement; already registered
                if self._dead:
                    # Revived what is *usually* a lazily-removed node.  A
                    # revived split pass-through decrements spuriously, so
                    # the counter is a heuristic floor — which is fine:
                    # ``node_count`` compacts unconditionally.
                    self._dead -= 1
                node[4] = value
                node[5] = True
                node[6] = prefix
                target = node
                break
            bit = (net >> (31 - node_plen)) & 1
            child = node[2 + bit]
            if child is None:
                target = [net, plen, None, None, value, True, prefix]
                node[2 + bit] = target
                break
            child_net = child[0]
            child_plen = child[1]
            # Longest common prefix of the target and the child's segment.
            diff = net ^ child_net
            if diff:
                common = 32 - diff.bit_length()
                if common > plen:
                    common = plen
                if common > child_plen:
                    common = child_plen
            else:
                common = plen if plen < child_plen else child_plen
            if common == child_plen:
                node = child  # the child's whole segment matches; descend
                continue
            # Split the compressed edge at the divergence point.
            mid = _new_node(child_net & _MASKS[common], common)
            node[2 + bit] = mid
            mid[2 + ((child_net >> (31 - common)) & 1)] = child
            if common == plen:
                # The target prefix *is* the split point.
                mid[4] = value
                mid[5] = True
                mid[6] = prefix
                target = mid
            else:
                target = [net, plen, None, None, value, True, prefix]
                mid[2 + ((net >> (31 - common)) & 1)] = target
            break
        self._count += 1
        len_map = self._len_maps.get(plen)
        if len_map is None:
            len_map = self._len_maps[plen] = {}
            self._lengths.append(plen)
            self._lengths.sort(reverse=True)
        len_map[net] = target
        return True

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Remove the exact prefix; returns whether it was present.

        O(1): the node is located through the per-length hash assist and
        merely blanked.  Branch pruning is deferred — an amortised
        compaction runs once enough dead nodes accumulate (and on every
        ``node_count`` read), so delete churn stays memory-bounded
        without paying a restructuring walk per delete.
        """
        return self._remove(prefix.network.value, prefix.length)

    def remove_code(self, code: int) -> bool:
        """:meth:`remove` keyed by an integer-coded prefix."""
        return self._remove(code >> _CODE_SHIFT, code & _CODE_LEN_MASK)

    def _remove(self, net: int, plen: int) -> bool:
        len_map = self._len_maps.get(plen)
        if not len_map:
            return False
        node = len_map.pop(net, None)
        if node is None:
            return False
        if not len_map:
            del self._len_maps[plen]
            self._lengths.remove(plen)
        node[4] = None
        node[5] = False
        node[6] = None
        self._count -= 1
        dead = self._dead + 1
        self._dead = dead
        if dead > self.PRUNE_FLOOR and dead > self._count:
            self._compact()
        return True

    def exact(self, prefix: IPv4Prefix) -> Optional[ValueT]:
        """Value stored for exactly this prefix, if any (O(1))."""
        len_map = self._len_maps.get(prefix.length)
        if not len_map:
            return None
        node = len_map.get(prefix.network.value)
        return node[4] if node is not None else None

    def exact_code(self, code: int) -> Optional[ValueT]:
        """:meth:`exact` keyed by an integer-coded prefix."""
        len_map = self._len_maps.get(code & _CODE_LEN_MASK)
        if not len_map:
            return None
        node = len_map.get(code >> _CODE_SHIFT)
        return node[4] if node is not None else None

    def lookup(self, address: IPv4Address) -> Optional[Tuple[IPv4Prefix, ValueT]]:
        """Longest-prefix match for ``address``."""
        value = address.value
        lengths = self._lengths
        if len(lengths) <= self.HASH_LOOKUP_MAX_LENGTHS:
            # Dense-table fast path: probe active lengths longest-first.
            len_maps = self._len_maps
            masks = _MASKS
            for plen in lengths:
                net = value & masks[plen]
                node = len_maps[plen].get(net)
                if node is not None:
                    prefix = node[6]
                    if prefix is None:  # int-coded insert: decode lazily
                        prefix = node[6] = IPv4Prefix(IPv4Address(net), plen)
                    return prefix, node[4]
            return None
        node = self._root
        best = None
        while True:
            if node[5]:
                best = node
            node_plen = node[1]
            if node_plen == 32:
                break
            child = node[2 + ((value >> (31 - node_plen)) & 1)]
            if child is None or (value ^ child[0]) >> (32 - child[1]):
                break
            node = child
        if best is None:
            return None
        prefix = best[6]
        if prefix is None:  # int-coded insert: decode lazily
            prefix = best[6] = IPv4Prefix(IPv4Address(best[0]), best[1])
        return prefix, best[4]

    def _compact(self) -> None:
        """Prune every dead branch, restoring full path compression."""
        root = self._root
        child = root[2]
        if child is not None:
            root[2] = _compress(child)
        child = root[3]
        if child is not None:
            root[3] = _compress(child)
        self._dead = 0

    @property
    def node_count(self) -> int:
        """Number of live trie nodes, root excluded (memory diagnostics).

        Compacts first, so the count reflects the fully-pruned trie the
        lazy-delete scheme converges to.
        """
        self._compact()
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in (node[2], node[3]):
                if child is not None:
                    total += 1
                    stack.append(child)
        return total

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.exact(prefix) is not None


class FlatFib:
    """Flat FIB: prefix → private adjacency copy (paper Figure 1)."""

    def __init__(self) -> None:
        self._table: LpmTable[FibEntry] = LpmTable()
        self._prefixes: Dict[IPv4Prefix, FibEntry] = {}

    # ------------------------------------------------------------------
    # Mutation (the data-plane write; timing is owned by the FibUpdater)
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, adjacency: Adjacency, now: float = 0.0) -> FibEntry:
        """Install or overwrite the entry for ``prefix``."""
        entry = FibEntry(prefix=prefix, adjacency=adjacency, updated_at=now)
        self._table.insert(prefix, entry)
        self._prefixes[prefix] = entry
        return entry

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove the entry for ``prefix``; returns whether it existed."""
        self._prefixes.pop(prefix, None)
        return self._table.remove(prefix)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """Longest-prefix-match forwarding decision for ``address``."""
        result = self._table.lookup(address)
        return result[1] if result is not None else None

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix``."""
        return self._prefixes.get(prefix)

    def entries(self) -> Iterator[FibEntry]:
        """Iterate all installed entries."""
        return iter(self._prefixes.values())

    def prefixes_using(self, mac: MacAddress) -> List[IPv4Prefix]:
        """All prefixes whose adjacency points at ``mac`` (diagnostics)."""
        return [p for p, e in self._prefixes.items() if e.adjacency.mac == mac]

    def __len__(self) -> int:
        return len(self._prefixes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefixes


class HierarchicalFib:
    """PIC-style hierarchical FIB: prefix → pointer → shared adjacency.

    Used as the "expensive line-card" baseline in the ablation experiments:
    repointing a shared adjacency converges every dependent prefix at once.
    """

    def __init__(self) -> None:
        self._table: LpmTable[int] = LpmTable()
        self._prefix_pointer: Dict[IPv4Prefix, int] = {}
        self._adjacencies: Dict[int, Adjacency] = {}
        self._next_pointer = 1
        self._updated_at: Dict[IPv4Prefix, float] = {}

    # ------------------------------------------------------------------
    # Adjacency (pointer) management
    # ------------------------------------------------------------------
    def add_adjacency(self, adjacency: Adjacency) -> int:
        """Register a shared adjacency, returning its pointer id."""
        pointer = self._next_pointer
        self._next_pointer += 1
        self._adjacencies[pointer] = adjacency
        return pointer

    def repoint(self, pointer: int, adjacency: Adjacency) -> None:
        """Atomically replace the adjacency behind ``pointer``.

        This is the constant-time convergence operation PIC provides.
        """
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._adjacencies[pointer] = adjacency

    def adjacency(self, pointer: int) -> Adjacency:
        """The adjacency currently behind ``pointer``."""
        return self._adjacencies[pointer]

    def pointers(self) -> Dict[int, Adjacency]:
        """All pointers and their adjacencies."""
        return dict(self._adjacencies)

    # ------------------------------------------------------------------
    # Prefix entries
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, pointer: int, now: float = 0.0) -> None:
        """Install or move ``prefix`` onto ``pointer``."""
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._table.insert(prefix, pointer)
        self._prefix_pointer[prefix] = pointer
        self._updated_at[prefix] = now

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove ``prefix``; returns whether it existed."""
        self._prefix_pointer.pop(prefix, None)
        self._updated_at.pop(prefix, None)
        return self._table.remove(prefix)

    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """LPM forwarding decision (pointer resolved to its adjacency)."""
        result = self._table.lookup(address)
        if result is None:
            return None
        prefix, pointer = result
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix`` (pointer resolved)."""
        pointer = self._prefix_pointer.get(prefix)
        if pointer is None:
            return None
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def pointer_of(self, prefix: IPv4Prefix) -> Optional[int]:
        """Pointer id used by ``prefix``, if installed."""
        return self._prefix_pointer.get(prefix)

    def __len__(self) -> int:
        return len(self._prefix_pointer)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefix_pointer
