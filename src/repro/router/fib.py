"""Forwarding Information Base structures.

Two FIB organisations are provided, mirroring the paper's Figure 1/2
discussion:

* :class:`FlatFib` — every prefix stores its own L2 adjacency (next-hop
  MAC + output port).  Rewriting the adjacency of many prefixes therefore
  requires touching every entry, which is why the standalone router
  converges linearly in the number of prefixes.
* :class:`HierarchicalFib` — prefixes store a *pointer* into a shared
  adjacency table (BGP PIC).  Repointing one adjacency instantly redirects
  every dependent prefix; this is the expensive-hardware alternative the
  supercharged design replicates across two devices.

Both are built on :class:`LpmTable`, a *path-compressed* binary trie
(radix tree) providing longest-prefix-match lookups.  Each node carries
its full masked network and depth, so walks compare whole bit segments
with integer xor/shift instead of descending one node per bit, and chains
with no branch points collapse into a single edge — a 100k-prefix table
allocates ~2 nodes per stored prefix rather than one per bit.  ``remove``
prunes emptied branches, so long insert/delete churn (RIS replay) does
not grow memory without bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress

ValueT = TypeVar("ValueT")


@dataclass(frozen=True)
class Adjacency:
    """An L2 next hop: destination MAC plus output interface name."""

    mac: MacAddress
    interface: str
    next_hop_ip: Optional[IPv4Address] = None


@dataclass(frozen=True)
class FibEntry:
    """One prefix's forwarding state as seen by the data plane."""

    prefix: IPv4Prefix
    adjacency: Adjacency
    updated_at: float = 0.0


# Trie nodes are plain 7-slot lists — C-speed index access beats attribute
# access on the per-level hot path, and a list literal is the cheapest
# allocation Python offers (node churn is constant during RIS replay).
# Layout: [net, plen, child0, child1, value, has_value, prefix]; the child
# for bit b lives at index 2 + b.  ``net``/``plen`` are the node's full
# masked network and depth: a child may sit many bits below its parent
# (the compressed chain), and the skipped segment is verified with one
# xor/shift instead of a per-bit walk.  The canonical IPv4Prefix object is
# kept in the node so a lookup returns it without allocating anything.
_NET = 0
_PLEN = 1
_CHILD = 2  # child for bit b is node[_CHILD + b]
_VALUE = 4
_HAS_VALUE = 5
_PREFIX = 6


def _new_node(net: int, plen: int) -> list:
    return [net, plen, None, None, None, False, None]


class LpmTable(Generic[ValueT]):
    """Path-compressed binary trie mapping IPv4 prefixes to values with LPM lookup."""

    def __init__(self) -> None:
        self._root: list = _new_node(0, 0)
        self._count = 0

    def insert(self, prefix: IPv4Prefix, value: ValueT) -> bool:
        """Insert or replace; returns ``True`` when the prefix was new."""
        net = prefix.network.value
        plen = prefix.length
        node = self._root
        while True:
            node_plen = node[1]
            if node_plen == plen:
                # By construction node[_NET] == net here.
                was_new = not node[5]
                node[4] = value
                node[5] = True
                node[6] = prefix
                if was_new:
                    self._count += 1
                return was_new
            bit = (net >> (31 - node_plen)) & 1
            child = node[2 + bit]
            if child is None:
                node[2 + bit] = [net, plen, None, None, value, True, prefix]
                self._count += 1
                return True
            child_net = child[0]
            child_plen = child[1]
            # Longest common prefix of the target and the child's segment.
            diff = net ^ child_net
            if diff:
                common = 32 - diff.bit_length()
                if common > plen:
                    common = plen
                if common > child_plen:
                    common = child_plen
            else:
                common = plen if plen < child_plen else child_plen
            if common == child_plen:
                node = child  # the child's whole segment matches; descend
                continue
            # Split the compressed edge at the divergence point.
            mid = _new_node(child_net & IPv4Prefix.mask_for(common), common)
            node[2 + bit] = mid
            mid[2 + ((child_net >> (31 - common)) & 1)] = child
            if common == plen:
                # The target prefix *is* the split point.
                mid[4] = value
                mid[5] = True
                mid[6] = prefix
            else:
                mid[2 + ((net >> (31 - common)) & 1)] = [
                    net, plen, None, None, value, True, prefix,
                ]
            self._count += 1
            return True

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Remove the exact prefix; returns whether it was present.

        Emptied branches are pruned and pass-through nodes re-compressed,
        so delete churn never leaves dead nodes behind.
        """
        net = prefix.network.value
        plen = prefix.length
        node = self._root
        path: List[Tuple[list, int]] = []  # (parent, child slot index)
        while node[1] < plen:
            slot = 2 + ((net >> (31 - node[1])) & 1)
            child = node[slot]
            if child is None or child[1] > plen or (net ^ child[0]) >> (32 - child[1]):
                return False
            path.append((node, slot))
            node = child
        if node[1] != plen or node[0] != net or not node[5]:
            return False
        node[5] = False
        node[4] = None
        node[6] = None
        self._count -= 1
        # Prune upward: drop empty leaves, splice out valueless
        # single-child pass-through nodes (restoring path compression).
        while path:
            parent, slot = path.pop()
            if node[5]:
                break
            left = node[2]
            right = node[3]
            if left is not None and right is not None:
                break  # still a real branch point
            survivor = left if left is not None else right
            parent[slot] = survivor  # None when the node was a leaf
            if survivor is not None:
                break  # splice done; the parent kept its child count
            node = parent
        return True

    def exact(self, prefix: IPv4Prefix) -> Optional[ValueT]:
        """Value stored for exactly this prefix, if any."""
        net = prefix.network.value
        plen = prefix.length
        node = self._root
        while node[1] < plen:
            child = node[2 + ((net >> (31 - node[1])) & 1)]
            if child is None or child[1] > plen or (net ^ child[0]) >> (32 - child[1]):
                return None
            node = child
        if node[1] != plen or node[0] != net:
            return None
        return node[4] if node[5] else None

    def lookup(self, address: IPv4Address) -> Optional[Tuple[IPv4Prefix, ValueT]]:
        """Longest-prefix match for ``address``."""
        value = address.value
        node = self._root
        best = None
        while True:
            if node[5]:
                best = node
            node_plen = node[1]
            if node_plen == 32:
                break
            child = node[2 + ((value >> (31 - node_plen)) & 1)]
            if child is None or (value ^ child[0]) >> (32 - child[1]):
                break
            node = child
        if best is None:
            return None
        return best[6], best[4]

    @property
    def node_count(self) -> int:
        """Number of live trie nodes, root excluded (memory diagnostics)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in (node[2], node[3]):
                if child is not None:
                    total += 1
                    stack.append(child)
        return total

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.exact(prefix) is not None


class FlatFib:
    """Flat FIB: prefix → private adjacency copy (paper Figure 1)."""

    def __init__(self) -> None:
        self._table: LpmTable[FibEntry] = LpmTable()
        self._prefixes: Dict[IPv4Prefix, FibEntry] = {}

    # ------------------------------------------------------------------
    # Mutation (the data-plane write; timing is owned by the FibUpdater)
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, adjacency: Adjacency, now: float = 0.0) -> FibEntry:
        """Install or overwrite the entry for ``prefix``."""
        entry = FibEntry(prefix=prefix, adjacency=adjacency, updated_at=now)
        self._table.insert(prefix, entry)
        self._prefixes[prefix] = entry
        return entry

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove the entry for ``prefix``; returns whether it existed."""
        self._prefixes.pop(prefix, None)
        return self._table.remove(prefix)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """Longest-prefix-match forwarding decision for ``address``."""
        result = self._table.lookup(address)
        return result[1] if result is not None else None

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix``."""
        return self._prefixes.get(prefix)

    def entries(self) -> Iterator[FibEntry]:
        """Iterate all installed entries."""
        return iter(self._prefixes.values())

    def prefixes_using(self, mac: MacAddress) -> List[IPv4Prefix]:
        """All prefixes whose adjacency points at ``mac`` (diagnostics)."""
        return [p for p, e in self._prefixes.items() if e.adjacency.mac == mac]

    def __len__(self) -> int:
        return len(self._prefixes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefixes


class HierarchicalFib:
    """PIC-style hierarchical FIB: prefix → pointer → shared adjacency.

    Used as the "expensive line-card" baseline in the ablation experiments:
    repointing a shared adjacency converges every dependent prefix at once.
    """

    def __init__(self) -> None:
        self._table: LpmTable[int] = LpmTable()
        self._prefix_pointer: Dict[IPv4Prefix, int] = {}
        self._adjacencies: Dict[int, Adjacency] = {}
        self._next_pointer = 1
        self._updated_at: Dict[IPv4Prefix, float] = {}

    # ------------------------------------------------------------------
    # Adjacency (pointer) management
    # ------------------------------------------------------------------
    def add_adjacency(self, adjacency: Adjacency) -> int:
        """Register a shared adjacency, returning its pointer id."""
        pointer = self._next_pointer
        self._next_pointer += 1
        self._adjacencies[pointer] = adjacency
        return pointer

    def repoint(self, pointer: int, adjacency: Adjacency) -> None:
        """Atomically replace the adjacency behind ``pointer``.

        This is the constant-time convergence operation PIC provides.
        """
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._adjacencies[pointer] = adjacency

    def adjacency(self, pointer: int) -> Adjacency:
        """The adjacency currently behind ``pointer``."""
        return self._adjacencies[pointer]

    def pointers(self) -> Dict[int, Adjacency]:
        """All pointers and their adjacencies."""
        return dict(self._adjacencies)

    # ------------------------------------------------------------------
    # Prefix entries
    # ------------------------------------------------------------------
    def write(self, prefix: IPv4Prefix, pointer: int, now: float = 0.0) -> None:
        """Install or move ``prefix`` onto ``pointer``."""
        if pointer not in self._adjacencies:
            raise KeyError(f"unknown adjacency pointer {pointer}")
        self._table.insert(prefix, pointer)
        self._prefix_pointer[prefix] = pointer
        self._updated_at[prefix] = now

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove ``prefix``; returns whether it existed."""
        self._prefix_pointer.pop(prefix, None)
        self._updated_at.pop(prefix, None)
        return self._table.remove(prefix)

    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """LPM forwarding decision (pointer resolved to its adjacency)."""
        result = self._table.lookup(address)
        if result is None:
            return None
        prefix, pointer = result
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def entry(self, prefix: IPv4Prefix) -> Optional[FibEntry]:
        """Exact-match entry for ``prefix`` (pointer resolved)."""
        pointer = self._prefix_pointer.get(prefix)
        if pointer is None:
            return None
        return FibEntry(
            prefix=prefix,
            adjacency=self._adjacencies[pointer],
            updated_at=self._updated_at.get(prefix, 0.0),
        )

    def pointer_of(self, prefix: IPv4Prefix) -> Optional[int]:
        """Pointer id used by ``prefix``, if installed."""
        return self._prefix_pointer.get(prefix)

    def __len__(self) -> int:
        return len(self._prefix_pointer)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._prefix_pointer
