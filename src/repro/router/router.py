"""The legacy router node.

:class:`Router` glues together the pieces a hardware router contains:

* numbered interfaces (ports with MAC + IP configuration);
* a BGP speaker (control plane) whose best-path changes drive…
* …the serial :class:`~repro.router.fib_updater.FibUpdater` feeding a flat
  (or, optionally, hierarchical) FIB;
* an ARP client/server for next-hop resolution;
* an optional BFD manager for fast failure detection;
* an IPv4 data plane doing longest-prefix-match forwarding.

The same class plays R1 (the supercharged router), R2 and R3 (the provider
peers) in the evaluation lab — only the configuration differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arp.cache import ArpCache
from repro.arp.protocol import ArpHandler
from repro.bfd.manager import BfdManager
from repro.bgp.messages import BgpMessage
from repro.bgp.rib import RibChange
from repro.bgp.speaker import BgpSpeaker, PeerConfig
from repro.net.addresses import IPv4Address, IPv4Prefix, MacAddress
from repro.net.interfaces import Interface
from repro.net.links import LinkState, Port
from repro.net.packets import (
    BfdControl,
    BgpTransport,
    EtherType,
    EthernetFrame,
    IpProtocol,
    IPv4Packet,
    UdpDatagram,
)
from repro.router.fib import Adjacency, FibEntry, FlatFib, HierarchicalFib
from repro.router.fib_updater import FibUpdater, FibUpdaterConfig
from repro.router.arp_client import ArpClient
from repro.sim.engine import Simulator


@dataclass
class RouterConfig:
    """Per-router knobs."""

    asn: int
    router_id: IPv4Address
    fib_updater: FibUpdaterConfig = field(default_factory=FibUpdaterConfig)
    #: Per-packet forwarding latency of the data plane.
    forwarding_latency: float = 10e-6
    #: Use a PIC-style hierarchical FIB instead of a flat one (ablation).
    hierarchical_fib: bool = False
    #: ARP cache lifetime in seconds.
    arp_lifetime: float = 1200.0
    #: BFD transmit interval; ``None`` disables BFD on this router.
    bfd_interval: Optional[float] = None
    bfd_multiplier: int = 3
    bgp_hold_time: float = 90.0


@dataclass(frozen=True)
class StaticRoute:
    """A statically configured route (installed at boot, bypassing BGP)."""

    prefix: IPv4Prefix
    next_hop: IPv4Address


class Router:
    """A simulated IP router / BGP speaker."""

    def __init__(self, sim: Simulator, name: str, config: RouterConfig) -> None:
        self._sim = sim
        self.name = name
        self.config = config
        self.interfaces: Dict[str, Interface] = {}
        self._ports: Dict[int, Port] = {}
        self._next_port_number = 0
        self.arp_cache = ArpCache(lifetime=config.arp_lifetime)
        self.arp_client = ArpClient(sim, self.arp_cache)
        self._arp_handler = ArpHandler(self.arp_cache, now=lambda: sim.now)
        self.fib = HierarchicalFib() if config.hierarchical_fib else FlatFib()
        # The serial updater only drives flat FIBs; hierarchical routers
        # converge by repointing adjacencies (see _peer_unreachable).
        self._flat_for_updater = self.fib if isinstance(self.fib, FlatFib) else FlatFib()
        self.fib_updater = FibUpdater(
            sim, self._flat_for_updater, config.fib_updater, name=f"{name}:fib"
        )
        self.bgp = BgpSpeaker(
            sim,
            asn=config.asn,
            router_id=config.router_id,
            transport=self._send_bgp,
        )
        self.bgp.on_rib_change(self._handle_rib_change)
        self.bgp.on_peer_down(self._handle_bgp_peer_down)
        self.bfd: Optional[BfdManager] = None
        if config.bfd_interval is not None:
            self.bfd = BfdManager(
                sim,
                send=self._send_bfd,
                tx_interval=config.bfd_interval,
                detect_multiplier=config.bfd_multiplier,
            )
            self.bfd.on_peer_down(self._handle_bfd_peer_down)
        # Next-hop IP -> resolved adjacency, shared by all prefixes via that NH.
        self._adjacency_cache: Dict[IPv4Address, Adjacency] = {}
        # Next-hop IP -> prefixes waiting for ARP resolution.
        self._pending_adjacency: Dict[IPv4Address, List[IPv4Prefix]] = {}
        # Hierarchical FIB: next-hop IP -> pointer id.
        self._pointer_by_next_hop: Dict[IPv4Address, int] = {}
        self._static_routes: List[StaticRoute] = []
        # Prefixes this router blackholes: it advertises no route for them
        # and drops matching traffic even if a covering route (e.g. a static
        # default) exists.  Models a failure *beyond* this router — the
        # upstream path died while the local links stayed up (remote-failure
        # scenarios).
        self._blackholes: set = set()
        self._udp_handlers: List[Callable[[IPv4Packet, UdpDatagram], None]] = []
        # Listeners notified when forwarding state changes outside the serial
        # FIB updater (hierarchical-FIB writes and repoints); the argument is
        # the affected prefix, or None for a change affecting many prefixes.
        self._fib_change_listeners: List[Callable[[Optional[IPv4Prefix]], None]] = []
        #: Data-plane counters.
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_no_adjacency = 0
        self.packets_delivered_locally = 0

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------
    def add_interface(
        self,
        name: str,
        mac: MacAddress,
        ip: Optional[IPv4Address] = None,
        subnet: Optional[IPv4Prefix] = None,
    ) -> Interface:
        """Create an interface (and its port) ready to be wired to a link."""
        if name in self.interfaces:
            raise ValueError(f"interface {name} already exists on {self.name}")
        port = Port(self.name, self._next_port_number)
        self._next_port_number += 1
        port.set_frame_handler(self._handle_frame)
        port.set_state_handler(self._handle_link_state)
        self._ports[port.number] = port
        interface = Interface(name=name, port=port, mac=mac, ip=ip, subnet=subnet)
        self.interfaces[name] = interface
        if ip is not None:
            self._arp_handler.register(ip, mac)
        return interface

    def interface_for(self, address: IPv4Address) -> Optional[Interface]:
        """The interface whose connected subnet covers ``address``."""
        for interface in self.interfaces.values():
            if interface.covers(address):
                return interface
        return None

    def interface_by_port(self, port: Port) -> Optional[Interface]:
        """The interface owning ``port``."""
        for interface in self.interfaces.values():
            if interface.port is port:
                return interface
        return None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_bgp_peer(self, peer: PeerConfig) -> None:
        """Configure a BGP neighbor (session started by :meth:`start`)."""
        self.bgp.add_peer(peer)

    def add_bfd_peer(self, peer_ip: IPv4Address) -> None:
        """Start BFD liveness detection towards ``peer_ip``."""
        if self.bfd is None:
            raise RuntimeError(f"{self.name} has BFD disabled (bfd_interval is None)")
        self.bfd.add_peer(peer_ip)

    def add_static_route(self, route: StaticRoute) -> None:
        """Install a static route immediately (boot-time configuration)."""
        self._static_routes.append(route)
        self._install_route(route.prefix, route.next_hop, immediate=True)

    def on_udp(self, handler: Callable[[IPv4Packet, UdpDatagram], None]) -> None:
        """Register a handler for UDP datagrams addressed to this router."""
        self._udp_handlers.append(handler)

    def add_blackhole(self, prefix: IPv4Prefix) -> None:
        """Start dropping traffic towards ``prefix`` (upstream path lost)."""
        self._blackholes.add(prefix)

    def clear_blackhole(self, prefix: IPv4Prefix) -> None:
        """Stop blackholing ``prefix`` (upstream path restored)."""
        self._blackholes.discard(prefix)

    def blackholed_prefixes(self) -> List[IPv4Prefix]:
        """All currently blackholed prefixes, in prefix order.

        Sorted because ``self._blackholes`` is a set: callers compare
        this list across runs (tests, potential exports), so its order
        must not depend on hash seeds or insertion history.
        """
        return sorted(self._blackholes)

    def is_blackholed(self, destination: IPv4Address) -> bool:
        """Whether traffic to ``destination`` is currently blackholed."""
        if not self._blackholes:
            return False
        return any(prefix.contains(destination) for prefix in self._blackholes)

    def on_fib_changed(self, handler: Callable[[Optional[IPv4Prefix]], None]) -> None:
        """Register a listener for forwarding changes not visible through the
        FIB updater (hierarchical-FIB writes/repoints).  ``None`` means the
        change potentially affects every prefix."""
        self._fib_change_listeners.append(handler)

    def _notify_fib_changed(self, prefix: Optional[IPv4Prefix]) -> None:
        for handler in list(self._fib_change_listeners):
            handler(prefix)

    def start(self) -> None:
        """Bring up the control plane (BGP sessions)."""
        self.bgp.start()

    # ------------------------------------------------------------------
    # Forwarding-state queries (no side effects; used by the path tracer)
    # ------------------------------------------------------------------
    def lookup_fib(self, destination: IPv4Address) -> Optional[FibEntry]:
        """Current FIB forwarding decision for ``destination``."""
        return self.fib.lookup(destination)

    def forwarding_decision(
        self, destination: IPv4Address
    ) -> Optional[Tuple[Interface, MacAddress]]:
        """Where a packet to ``destination`` would be sent *right now*.

        Connected destinations resolve through the ARP cache; remote ones
        through the FIB.  Returns ``None`` when the packet would be dropped.
        """
        if self._blackholes and self.is_blackholed(destination):
            return None
        local = self.interface_for(destination)
        if local is not None:
            mac = self.arp_cache.lookup(destination, self._sim.now)
            if mac is None:
                return None
            return (local, mac) if local.is_up else None
        entry = self.fib.lookup(destination)
        if entry is None:
            return None
        interface = self.interfaces.get(entry.adjacency.interface)
        if interface is None or not interface.is_up:
            return None
        return interface, entry.adjacency.mac

    # ------------------------------------------------------------------
    # Packet transmission helpers
    # ------------------------------------------------------------------
    def send_ip_packet(self, packet: IPv4Packet) -> None:
        """Send a locally originated IPv4 packet."""
        self._forward(packet, immediate=True)

    def _send_bgp(self, peer_ip: IPv4Address, message: BgpMessage) -> None:
        interface = self.interface_for(peer_ip)
        if interface is None or interface.ip is None:
            return
        transport = BgpTransport(src_ip=interface.ip, dst_ip=peer_ip, message=message)

        def transmit(mac: Optional[MacAddress]) -> None:
            if mac is None or not interface.is_up:
                return
            frame = EthernetFrame(
                src_mac=interface.mac,
                dst_mac=mac,
                ethertype=EtherType.BGP_TRANSPORT,
                payload=transport,
            )
            interface.port.send(frame)

        self.arp_client.resolve(peer_ip, interface, transmit)

    def _send_bfd(self, peer_ip: IPv4Address, packet: BfdControl) -> None:
        interface = self.interface_for(peer_ip)
        if interface is None or interface.ip is None:
            return
        ip_packet = IPv4Packet(
            src=interface.ip, dst=peer_ip, protocol=IpProtocol.BFD, payload=packet
        )

        def transmit(mac: Optional[MacAddress]) -> None:
            if mac is None or not interface.is_up:
                return
            frame = EthernetFrame(
                src_mac=interface.mac,
                dst_mac=mac,
                ethertype=EtherType.IPV4,
                payload=ip_packet,
            )
            interface.port.send(frame)

        self.arp_client.resolve(peer_ip, interface, transmit)

    # ------------------------------------------------------------------
    # Frame reception
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: EthernetFrame, port: Port) -> None:
        interface = self.interface_by_port(port)
        if interface is None:
            return
        # Accept frames for our MAC, broadcast, or any locally administered
        # (virtual) destination is *not* ours — routers only accept their own.
        if frame.dst_mac not in (interface.mac,) and not frame.dst_mac.is_broadcast:
            return
        if frame.ethertype is EtherType.ARP:
            self._handle_arp(frame, interface)
        elif frame.ethertype is EtherType.BGP_TRANSPORT:
            self._handle_bgp_transport(frame, interface)
        elif frame.ethertype is EtherType.IPV4:
            self._handle_ipv4(frame.payload, interface)

    def _handle_arp(self, frame: EthernetFrame, interface: Interface) -> None:
        packet = frame.payload
        self.arp_client.handle_reply(packet)
        reply = self._arp_handler.handle(packet)
        if reply is not None and interface.is_up:
            interface.port.send(reply)
        # A next hop we were waiting for may have just resolved.
        self._drain_pending_adjacencies(packet.sender_ip, packet.sender_mac, interface)

    def _handle_bgp_transport(self, frame: EthernetFrame, interface: Interface) -> None:
        transport: BgpTransport = frame.payload
        if interface.ip is None or transport.dst_ip != interface.ip:
            return
        self.bgp.deliver(transport.src_ip, transport.message)

    def _handle_ipv4(self, packet: IPv4Packet, interface: Interface) -> None:
        if self._is_local_address(packet.dst):
            self._deliver_locally(packet)
            return
        self._forward(packet)

    def _is_local_address(self, address: IPv4Address) -> bool:
        return any(
            iface.ip is not None and iface.ip == address
            for iface in self.interfaces.values()
        )

    def _deliver_locally(self, packet: IPv4Packet) -> None:
        self.packets_delivered_locally += 1
        if packet.protocol is IpProtocol.BFD and self.bfd is not None:
            self.bfd.receive(packet.src, packet.payload)
        elif packet.protocol is IpProtocol.UDP:
            for handler in list(self._udp_handlers):
                handler(packet, packet.payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _forward(self, packet: IPv4Packet, immediate: bool = False) -> None:
        if packet.ttl <= 1 and not immediate:
            self.packets_dropped_no_route += 1
            return
        decision = self.forwarding_decision(packet.dst)
        if decision is None:
            connected = self.interface_for(packet.dst)
            if connected is not None and connected.is_up:
                # Directly connected destination with no ARP entry yet:
                # resolve it and retransmit the packet once resolved.
                self.arp_client.resolve(
                    packet.dst,
                    connected,
                    lambda mac, p=packet, i=immediate: (
                        self._forward(p, immediate=i) if mac is not None else None
                    ),
                )
                return
            entry = self.fib.lookup(packet.dst)
            if entry is None and connected is None:
                self.packets_dropped_no_route += 1
            else:
                self.packets_dropped_no_adjacency += 1
            return
        interface, dst_mac = decision
        outgoing = packet if immediate else packet.decremented()
        frame = EthernetFrame(
            src_mac=interface.mac,
            dst_mac=dst_mac,
            ethertype=EtherType.IPV4,
            payload=outgoing,
        )

        def transmit() -> None:
            if interface.is_up:
                interface.port.send(frame)
                self.packets_forwarded += 1

        if immediate:
            transmit()
        else:
            self._sim.schedule(
                self.config.forwarding_latency, transmit, name=f"{self.name}:fwd"
            )

    # ------------------------------------------------------------------
    # RIB -> FIB plumbing
    # ------------------------------------------------------------------
    def _handle_rib_change(self, change: RibChange, from_peer: IPv4Address) -> None:
        if not change.best_changed:
            return
        if change.new_best is None:
            self._enqueue_delete(change.prefix)
            return
        self._install_route(change.prefix, change.new_best.next_hop, immediate=False)

    def _install_route(
        self, prefix: IPv4Prefix, next_hop: IPv4Address, immediate: bool
    ) -> None:
        if isinstance(self.fib, HierarchicalFib):
            self._install_hierarchical(prefix, next_hop)
            return
        adjacency = self._adjacency_cache.get(next_hop)
        if adjacency is not None:
            self._enqueue_write(prefix, adjacency, immediate)
            return
        interface = self.interface_for(next_hop)
        if interface is None:
            # Next hop not on a connected subnet: unresolvable, treat as drop.
            self._enqueue_delete(prefix)
            return
        waiting = self._pending_adjacency.setdefault(next_hop, [])
        waiting.append(prefix)
        if len(waiting) == 1:
            self.arp_client.resolve(
                next_hop,
                interface,
                lambda mac, nh=next_hop, iface=interface: self._adjacency_resolved(
                    nh, mac, iface, immediate
                ),
            )

    def _adjacency_resolved(
        self,
        next_hop: IPv4Address,
        mac: Optional[MacAddress],
        interface: Interface,
        immediate: bool,
    ) -> None:
        waiting = self._pending_adjacency.pop(next_hop, [])
        if mac is None:
            for prefix in waiting:
                self._enqueue_delete(prefix)
            return
        adjacency = Adjacency(mac=mac, interface=interface.name, next_hop_ip=next_hop)
        self._adjacency_cache[next_hop] = adjacency
        for prefix in waiting:
            self._enqueue_write(prefix, adjacency, immediate)

    def _drain_pending_adjacencies(
        self, ip: IPv4Address, mac: MacAddress, interface: Interface
    ) -> None:
        if ip not in self._pending_adjacency:
            return
        waiting = self._pending_adjacency.pop(ip)
        adjacency = Adjacency(mac=mac, interface=interface.name, next_hop_ip=ip)
        self._adjacency_cache[ip] = adjacency
        for prefix in waiting:
            self._enqueue_write(prefix, adjacency, immediate=False)

    def _enqueue_write(
        self, prefix: IPv4Prefix, adjacency: Adjacency, immediate: bool
    ) -> None:
        self.fib_updater.enqueue(prefix, adjacency)
        if immediate:
            self.fib_updater.flush_immediately()

    def _enqueue_delete(self, prefix: IPv4Prefix) -> None:
        if isinstance(self.fib, HierarchicalFib):
            self.fib.delete(prefix)
            self._notify_fib_changed(prefix)
            return
        self.fib_updater.enqueue(prefix, None)

    # ------------------------------------------------------------------
    # Hierarchical (PIC) FIB path
    # ------------------------------------------------------------------
    def _install_hierarchical(self, prefix: IPv4Prefix, next_hop: IPv4Address) -> None:
        assert isinstance(self.fib, HierarchicalFib)
        pointer = self._pointer_by_next_hop.get(next_hop)
        if pointer is None:
            interface = self.interface_for(next_hop)
            if interface is None:
                return
            mac = self.arp_cache.lookup(next_hop, self._sim.now)
            if mac is None:
                # Resolve then retry; PIC routers still need ARP.
                self.arp_client.resolve(
                    next_hop,
                    interface,
                    lambda _mac, p=prefix, nh=next_hop: self._install_hierarchical(p, nh),
                )
                return
            adjacency = Adjacency(mac=mac, interface=interface.name, next_hop_ip=next_hop)
            pointer = self.fib.add_adjacency(adjacency)
            self._pointer_by_next_hop[next_hop] = pointer
        self.fib.write(prefix, pointer, now=self._sim.now)
        self._notify_fib_changed(prefix)

    def repoint_next_hop(self, old_next_hop: IPv4Address, new_next_hop: IPv4Address) -> bool:
        """PIC convergence: atomically repoint every prefix using
        ``old_next_hop`` to ``new_next_hop`` (hierarchical FIBs only)."""
        if not isinstance(self.fib, HierarchicalFib):
            return False
        pointer = self._pointer_by_next_hop.get(old_next_hop)
        if pointer is None:
            return False
        interface = self.interface_for(new_next_hop)
        if interface is None:
            return False
        mac = self.arp_cache.lookup(new_next_hop, self._sim.now)
        if mac is None:
            return False
        self.fib.repoint(
            pointer,
            Adjacency(mac=mac, interface=interface.name, next_hop_ip=new_next_hop),
        )
        self._notify_fib_changed(None)
        return True

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _handle_link_state(self, state: LinkState, port: Port) -> None:
        if state is not LinkState.DOWN:
            return
        interface = self.interface_by_port(port)
        if interface is None or interface.subnet is None:
            return
        # Tear down BGP sessions to peers reached through the failed interface.
        for peer_ip in list(self.bgp.peers()):
            if interface.covers(peer_ip):
                self.bgp.peer_connection_lost(peer_ip, "interface down")

    def _handle_bfd_peer_down(self, peer_ip: IPv4Address, reason: str) -> None:
        # PIC routers repoint the shared adjacency to the precomputed backup
        # *before* the control plane reconverges — that is the whole point.
        if isinstance(self.fib, HierarchicalFib):
            backup = self._precomputed_backup_for(peer_ip)
            if backup is not None:
                self.repoint_next_hop(peer_ip, backup)
        # BFD is registered with BGP as the fast failure detector.
        if peer_ip in self.bgp.peers():
            self.bgp.peer_connection_lost(peer_ip, f"BFD: {reason}")

    def _precomputed_backup_for(self, failed_next_hop: IPv4Address) -> Optional[IPv4Address]:
        """Best alternative next hop for prefixes currently routed via the
        failed one (what PIC would have precomputed)."""
        for prefix in self.bgp.loc_rib.prefixes():
            ranking = self.bgp.loc_rib.ranking(prefix)
            if ranking and ranking[0].next_hop == failed_next_hop and len(ranking) > 1:
                return ranking[1].next_hop
        return None

    def _handle_bgp_peer_down(self, peer_ip: IPv4Address, reason: str) -> None:
        # Nothing extra: the speaker already flushed the routes, and the
        # resulting RIB changes drive the FIB updater.
        return

    def __repr__(self) -> str:
        return f"Router({self.name}, asn={self.config.asn}, fib={len(self.fib)})"
