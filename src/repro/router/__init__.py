"""Legacy IP router substrate.

Models the Cisco Nexus 7k of the paper's testbed at the level of detail
that matters for convergence behaviour:

* a longest-prefix-match FIB — **flat** by default (each prefix carries its
  own L2 adjacency) or **hierarchical** (PIC-style shared pointers) for the
  ablation baseline;
* a serial FIB update engine with a configurable first-entry latency and
  per-entry latency, reproducing the linear-in-prefixes convergence of the
  paper's Figure 5;
* an ARP client used to resolve next hops (including the controller's
  virtual next hops) to MAC addresses;
* a router node tying interfaces, a BGP speaker, optional BFD, the FIB and
  the data plane together.
"""

from repro.router.fib import (
    Adjacency,
    FibEntry,
    FlatFib,
    HierarchicalFib,
    LpmTable,
)
from repro.router.fib_updater import FibUpdater, FibUpdaterConfig, FibWriteRequest
from repro.router.arp_client import ArpClient
from repro.router.router import Router, RouterConfig, StaticRoute

__all__ = [
    "Adjacency",
    "FibEntry",
    "FlatFib",
    "HierarchicalFib",
    "LpmTable",
    "FibUpdater",
    "FibUpdaterConfig",
    "FibWriteRequest",
    "ArpClient",
    "Router",
    "RouterConfig",
    "StaticRoute",
]
