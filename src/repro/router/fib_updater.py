"""Serial FIB update engine.

The convergence bottleneck the paper attacks is *not* BGP: it is the time
the router's line cards take to rewrite the hardware FIB, one entry at a
time.  :class:`FibUpdater` reproduces that behaviour: write requests are
queued and applied strictly serially, with

* ``first_entry_latency`` — the delay before the first entry of a batch is
  programmed (protocol processing, RIB→FIB download setup; the paper
  measured ~375 ms on the Nexus 7k), and
* ``per_entry_latency`` — the incremental cost of every entry
  (~0.28 ms/entry reproduces the paper's ≈141 s for 512 k prefixes).

Listeners can subscribe to per-prefix completion events, which is how the
reachability monitor measures when a destination's forwarding state was
actually repaired.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.net.addresses import IPv4Prefix
from repro.router.fib import Adjacency, FlatFib
from repro.sim.engine import EventHandle, Simulator

#: Fixed bucket edges (ms) of the per-batch install-latency histogram:
#: spans one first-entry latency (~375 ms) up to a full-table download.
INSTALL_MS_EDGES = (1.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1_000.0,
                    5_000.0, 20_000.0, 60_000.0, 180_000.0)
#: Fixed bucket edges of the entries-per-batch histogram.
BATCH_ENTRIES_EDGES = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)


@dataclass
class FibUpdaterConfig:
    """Timing characteristics of the FIB download path."""

    #: Delay before the first entry of an idle-to-busy batch is written.
    first_entry_latency: float = 0.375
    #: Additional delay for each subsequent entry.
    per_entry_latency: float = 0.000281

    def batch_duration(self, entries: int) -> float:
        """Analytic duration of a batch of ``entries`` writes."""
        if entries <= 0:
            return 0.0
        return self.first_entry_latency + (entries - 1) * self.per_entry_latency


@dataclass(frozen=True)
class FibWriteRequest:
    """One queued FIB operation (``adjacency is None`` means delete)."""

    prefix: IPv4Prefix
    adjacency: Optional[Adjacency]


class FibUpdater:
    """Applies FIB writes serially against a :class:`FlatFib`.

    The updater is deliberately unaware of BGP: the router enqueues write
    requests whenever its Loc-RIB best path changes, and the updater drains
    the queue at hardware speed.
    """

    def __init__(
        self,
        sim: Simulator,
        fib: FlatFib,
        config: Optional[FibUpdaterConfig] = None,
        name: str = "fib",
    ) -> None:
        self._sim = sim
        self._fib = fib
        self.config = config or FibUpdaterConfig()
        self.name = name
        self._queue: Deque[FibWriteRequest] = deque()
        self._busy = False
        self._pending_event: Optional[EventHandle] = None
        self._listeners: List[Callable[[IPv4Prefix, Optional[Adjacency], float], None]] = []
        self._idle_listeners: List[Callable[[], None]] = []
        self.writes_applied = 0
        self.deletes_applied = 0
        #: Per-prefix time of the most recent applied write (diagnostics).
        self.last_applied: Dict[IPv4Prefix, float] = {}
        self._telemetry = None
        self._batch_origin = 0.0
        self._batch_entries = 0
        self._batch_first_pending = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Number of writes waiting to be applied."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a batch is currently draining."""
        return self._busy

    def on_entry_applied(
        self, callback: Callable[[IPv4Prefix, Optional[Adjacency], float], None]
    ) -> None:
        """Subscribe to per-entry completion events ``(prefix, adjacency, time)``."""
        self._listeners.append(callback)

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Subscribe to queue-drained events."""
        self._idle_listeners.append(callback)

    def attach_telemetry(self, telemetry) -> None:
        """Enable trace/metric emission (batch-granular, never per entry):
        ``fib.batch_start`` on every idle-to-busy transition,
        ``fib.apply_first`` when the batch's first entry lands (the
        *install* stage of the convergence timeline) and
        ``fib.batch_drain`` with the batch's entry count and install
        latency when the queue empties."""
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def enqueue(self, prefix: IPv4Prefix, adjacency: Optional[Adjacency]) -> None:
        """Queue a write (or a delete when ``adjacency`` is ``None``)."""
        self._queue.append(FibWriteRequest(prefix=prefix, adjacency=adjacency))
        if not self._busy:
            self._busy = True
            self._pending_event = self._sim.schedule(
                self.config.first_entry_latency, self._apply_next, name=f"{self.name}:first"
            )
            if self._telemetry is not None:
                self._note_batch_start()

    def enqueue_many(self, requests: List[FibWriteRequest]) -> None:
        """Queue a batch of writes preserving order.

        The batched write path: the whole list lands on the queue in one
        ``deque.extend`` with a single busy check, instead of re-testing
        the drain state once per entry.  Timing is identical to enqueueing
        the requests one at a time (the first entry of an idle-to-busy
        batch still pays ``first_entry_latency``).
        """
        if not requests:
            return
        was_idle = not self._busy
        self._queue.extend(requests)
        if was_idle:
            self._busy = True
            self._pending_event = self._sim.schedule(
                self.config.first_entry_latency, self._apply_next, name=f"{self.name}:first"
            )
            if self._telemetry is not None:
                self._note_batch_start()

    #: Alias matching the flow-table/engine batch naming.
    enqueue_batch = enqueue_many

    def flush_immediately(self) -> None:
        """Apply every queued write *now*, bypassing the hardware latency.

        Used only for initial configuration (static routes at boot), never
        during an experiment.
        """
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        while self._queue:
            request = self._queue.popleft()
            self._apply(request)
        self._busy = False
        # Boot-time path: reset the batch tracking silently (no events).
        self._batch_first_pending = False
        self._batch_entries = 0
        self._notify_idle()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_next(self) -> None:
        if not self._queue:
            self._busy = False
            self._pending_event = None
            if self._telemetry is not None:
                self._note_batch_drain()
            self._notify_idle()
            return
        request = self._queue.popleft()
        self._apply(request)
        if self._queue:
            self._pending_event = self._sim.schedule(
                self.config.per_entry_latency, self._apply_next, name=f"{self.name}:entry"
            )
        else:
            self._busy = False
            self._pending_event = None
            if self._telemetry is not None:
                self._note_batch_drain()
            self._notify_idle()

    def _apply(self, request: FibWriteRequest) -> None:
        now = self._sim.now
        if request.adjacency is None:
            self._fib.delete(request.prefix)
            self.deletes_applied += 1
        else:
            self._fib.write(request.prefix, request.adjacency, now=now)
            self.writes_applied += 1
        self.last_applied[request.prefix] = now
        if self._telemetry is not None:
            self._batch_entries += 1
            if self._batch_first_pending:
                self._batch_first_pending = False
                self._telemetry.emit(
                    "fib.apply_first",
                    updater=self.name,
                    wait_ms=round((now - self._batch_origin) * 1e3, 6),
                )
            if request.adjacency is not None:
                # Causal install leg: a write landing while an outage is
                # open is that prefix's restoration instant (no-op and
                # cheap outside an outage — the ledger drops it).
                self._telemetry.restored(request.prefix)
        for callback in list(self._listeners):
            callback(request.prefix, request.adjacency, now)

    def _notify_idle(self) -> None:
        for callback in list(self._idle_listeners):
            callback()

    # ------------------------------------------------------------------
    # Telemetry (batch-granular; call sites guard on ``is not None``)
    # ------------------------------------------------------------------
    def _note_batch_start(self) -> None:
        self._batch_origin = self._sim.now
        self._batch_entries = 0
        self._batch_first_pending = True
        self._telemetry.emit(
            "fib.batch_start", updater=self.name, queue_depth=len(self._queue)
        )

    def _note_batch_drain(self) -> None:
        if not self._batch_first_pending and self._batch_entries == 0:
            return  # spurious wake-up (queue already flushed)
        install_ms = round((self._sim.now - self._batch_origin) * 1e3, 6)
        self._telemetry.histogram("fib.install_ms", INSTALL_MS_EDGES).observe(install_ms)
        self._telemetry.histogram(
            "fib.batch_entries", BATCH_ENTRIES_EDGES
        ).observe(float(self._batch_entries))
        self._telemetry.emit(
            "fib.batch_drain",
            updater=self.name,
            entries=self._batch_entries,
            install_ms=install_ms,
        )
        self._batch_entries = 0
        self._batch_first_pending = False
