"""Command-line interface.

Exposes the main experiments without writing any Python::

    python -m repro.cli failover --prefixes 1000 --supercharged
    python -m repro.cli figure5 --repetitions 3 --flows 100
    python -m repro.cli microbench --updates 50000
    python -m repro.cli groups --peers 2 3 5 10
    python -m repro.cli ablations

Every sub-command prints a plain-text report to stdout and exits non-zero
on obviously broken results (so the CLI doubles as a smoke test).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.ablations import compare_fib_designs
from repro.experiments.backup_group_analysis import backup_group_counts
from repro.experiments.controller_bench import ControllerMicrobench
from repro.experiments.figure5 import Figure5Experiment, active_prefix_counts
from repro.experiments.stats import BoxStats, format_table
from repro.sim.engine import Simulator
from repro.topology.lab import ConvergenceLab, LabConfig


def _cmd_failover(arguments: argparse.Namespace) -> int:
    sim = Simulator(seed=arguments.seed)
    lab = ConvergenceLab(
        sim,
        LabConfig(
            num_prefixes=arguments.prefixes,
            supercharged=arguments.supercharged,
            monitored_flows=arguments.flows,
            seed=arguments.seed,
        ),
    ).build()
    lab.start()
    lab.load_feeds()
    lab.wait_converged()
    lab.setup_monitoring()
    result = lab.run_single_failover()
    stats = BoxStats.from_samples(result.samples)
    mode = "supercharged" if arguments.supercharged else "standalone"
    print(f"{mode} router, {arguments.prefixes} prefixes, {arguments.flows} flows")
    if result.detection_time is not None:
        print(f"  failure detection : {result.detection_time * 1e3:8.1f} ms")
    print(f"  median convergence: {stats.median * 1e3:8.1f} ms")
    print(f"  p95 convergence   : {stats.p95 * 1e3:8.1f} ms")
    print(f"  max convergence   : {stats.maximum * 1e3:8.1f} ms")
    return 0 if stats.maximum < 3600 else 1


def _cmd_figure5(arguments: argparse.Namespace) -> int:
    counts = arguments.prefixes or list(active_prefix_counts())
    experiment = Figure5Experiment(
        prefix_counts=counts,
        repetitions=arguments.repetitions,
        monitored_flows=arguments.flows,
        seed=arguments.seed,
    )
    experiment.run()
    print(experiment.report())
    return 0


def _cmd_microbench(arguments: argparse.Namespace) -> int:
    bench = ControllerMicrobench(updates_per_peer=arguments.updates, seed=arguments.seed)
    result = bench.run()
    print(bench.report(result))
    return 0 if result.updates_processed == 2 * arguments.updates else 1


def _cmd_groups(arguments: argparse.Namespace) -> int:
    results = backup_group_counts(
        peer_counts=tuple(arguments.peers), num_prefixes=arguments.prefixes
    )
    rows = [
        [str(r.num_peers), str(r.observed_groups), str(r.theoretical_bound)]
        for r in results
    ]
    print(format_table(["peers", "observed groups", "n*(n-1) bound"], rows))
    return 0 if all(r.within_bound for r in results) else 1


def _cmd_ablations(arguments: argparse.Namespace) -> int:
    points = compare_fib_designs(
        num_prefixes=arguments.prefixes, monitored_flows=arguments.flows
    )
    rows = [
        [point.label, f"{point.max_convergence * 1e3:.1f}", f"{point.median_convergence * 1e3:.1f}"]
        for point in points
    ]
    print(format_table(["FIB organisation", "max conv (ms)", "median conv (ms)"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Supercharged-router reproduction experiments"
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    commands = parser.add_subparsers(dest="command", required=True)

    failover = commands.add_parser("failover", help="run one failover experiment")
    failover.add_argument("--prefixes", type=int, default=1_000)
    failover.add_argument("--flows", type=int, default=50)
    failover.add_argument("--supercharged", action="store_true")
    failover.set_defaults(handler=_cmd_failover)

    figure5 = commands.add_parser("figure5", help="regenerate Figure 5")
    figure5.add_argument("--prefixes", type=int, nargs="*", default=None)
    figure5.add_argument("--repetitions", type=int, default=3)
    figure5.add_argument("--flows", type=int, default=100)
    figure5.set_defaults(handler=_cmd_figure5)

    microbench = commands.add_parser("microbench", help="controller processing benchmark")
    microbench.add_argument("--updates", type=int, default=50_000)
    microbench.set_defaults(handler=_cmd_microbench)

    groups = commands.add_parser("groups", help="backup-group count analysis")
    groups.add_argument("--peers", type=int, nargs="+", default=[2, 3, 5, 10])
    groups.add_argument("--prefixes", type=int, default=2_000)
    groups.set_defaults(handler=_cmd_groups)

    ablations = commands.add_parser("ablations", help="compare FIB organisations")
    ablations.add_argument("--prefixes", type=int, default=2_000)
    ablations.add_argument("--flows", type=int, default=20)
    ablations.set_defaults(handler=_cmd_ablations)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
