"""Command-line interface.

Exposes the main experiments without writing any Python::

    python -m repro.cli failover --prefixes 1000 --supercharged
    python -m repro.cli figure5 --repetitions 3 --flows 100
    python -m repro.cli microbench --updates 50000
    python -m repro.cli groups --peers 2 3 5 10
    python -m repro.cli ablations
    python -m repro.cli detection --prefixes 1000 [--json]
    python -m repro.cli remote-supercharge --prefixes 200 500 1000 [--json]
    python -m repro.cli metrics --preset figure4 --failures link_down bfd_loss
    python -m repro.cli metrics --preset figure4 --openmetrics
    python -m repro.cli report --preset remote-withdraw --out artifacts/report
    python -m repro.cli trace --preset figure4 --event fib.batch_drain
    python -m repro.cli trace --preset figure4 --out trace.jsonl
    python -m repro.cli scenarios list
    python -m repro.cli scenarios run --preset fan --providers 4
    python -m repro.cli scenarios sweep --providers 2 3 --failures link_down \
        --workers 4 --output results.json

Every sub-command prints a plain-text report to stdout and exits non-zero
on obviously broken results (so the CLI doubles as a smoke test).  The
``--seed`` option is accepted both globally and per sub-command, so every
run is reproducible from the command line.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis import (
    ALL_RULES,
    Baseline,
    LintConfig,
    RULES_BY_CODE,
    lint_paths,
)
from repro.experiments.ablations import compare_fib_designs
from repro.experiments.backup_group_analysis import backup_group_counts
from repro.experiments.controller_bench import ControllerMicrobench
from repro.experiments.detection import DetectionExperiment
from repro.experiments.figure5 import Figure5Experiment, active_prefix_counts
from repro.experiments.remote_supercharge import (
    DEFAULT_PREFIX_COUNTS as REMOTE_PREFIX_COUNTS,
    RemoteSuperchargeExperiment,
)
from repro.experiments.stats import BoxStats, format_table
from repro.scenarios import (
    CampaignRunner,
    ScenarioSpecError,
    execute_scenario,
    expand_grid,
    get_preset,
    preset_names,
    random_fan_specs,
    run_scenario,
)
from repro.sim.engine import Simulator
from repro.telemetry.export import (
    build_campaign_report,
    render_openmetrics,
    render_report_html,
    report_to_json,
)
from repro.telemetry.process import peak_rss_mb
from repro.topology.lab import ConvergenceLab, LabConfig


def _cmd_failover(arguments: argparse.Namespace) -> int:
    sim = Simulator(seed=arguments.seed)
    lab = ConvergenceLab(
        sim,
        LabConfig(
            num_prefixes=arguments.prefixes,
            supercharged=arguments.supercharged,
            monitored_flows=arguments.flows,
            seed=arguments.seed,
        ),
    ).build()
    lab.start()
    lab.load_feeds()
    lab.wait_converged()
    lab.setup_monitoring()
    result = lab.run_single_failover()
    stats = BoxStats.from_samples(result.samples)
    mode = "supercharged" if arguments.supercharged else "standalone"
    print(f"{mode} router, {arguments.prefixes} prefixes, {arguments.flows} flows")
    if result.detection_time is not None:
        print(f"  failure detection : {result.detection_time * 1e3:8.1f} ms")
    print(f"  median convergence: {stats.median * 1e3:8.1f} ms")
    print(f"  p95 convergence   : {stats.p95 * 1e3:8.1f} ms")
    print(f"  max convergence   : {stats.maximum * 1e3:8.1f} ms")
    return 0 if stats.maximum < 3600 else 1


def _cmd_figure5(arguments: argparse.Namespace) -> int:
    counts = arguments.prefixes or list(active_prefix_counts())
    experiment = Figure5Experiment(
        prefix_counts=counts,
        repetitions=arguments.repetitions,
        monitored_flows=arguments.flows,
        seed=arguments.seed,
    )
    experiment.run()
    print(experiment.report())
    return 0


def _cmd_microbench(arguments: argparse.Namespace) -> int:
    bench = ControllerMicrobench(updates_per_peer=arguments.updates, seed=arguments.seed)
    result = bench.run()
    print(bench.report(result))
    return 0 if result.updates_processed == 2 * arguments.updates else 1


def _cmd_groups(arguments: argparse.Namespace) -> int:
    results = backup_group_counts(
        peer_counts=tuple(arguments.peers), num_prefixes=arguments.prefixes
    )
    rows = [
        [str(r.num_peers), str(r.observed_groups), str(r.theoretical_bound)]
        for r in results
    ]
    print(format_table(["peers", "observed groups", "n*(n-1) bound"], rows))
    return 0 if all(r.within_bound for r in results) else 1


def _cmd_ablations(arguments: argparse.Namespace) -> int:
    points = compare_fib_designs(
        num_prefixes=arguments.prefixes, monitored_flows=arguments.flows
    )
    rows = [
        [point.label, f"{point.max_convergence * 1e3:.1f}", f"{point.median_convergence * 1e3:.1f}"]
        for point in points
    ]
    print(format_table(["FIB organisation", "max conv (ms)", "median conv (ms)"], rows))
    return 0


def _cmd_detection(arguments: argparse.Namespace) -> int:
    experiment = DetectionExperiment(
        num_prefixes=arguments.prefixes,
        monitored_flows=arguments.flows,
        prefix_fraction=arguments.fraction,
        seed=arguments.seed,
    )
    rows = experiment.run()
    # Local faults must ride on BFD, remote faults on BGP propagation.
    expected = {"local": "bfd", "remote": "bgp"}
    consistent = all(
        row.detection_path == expected[row.fault] and row.recovered for row in rows
    )
    if arguments.json:
        print(
            json.dumps(
                {
                    "rows": [dataclasses.asdict(row) for row in rows],
                    "consistent": consistent,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(experiment.report())
    return 0 if consistent else 1


def _cmd_remote_supercharge(arguments: argparse.Namespace) -> int:
    experiment = RemoteSuperchargeExperiment(
        prefix_counts=arguments.prefixes,
        monitored_flows=arguments.flows,
        num_providers=arguments.providers,
        seed=arguments.seed,
    )
    experiment.run()
    speedups = experiment.speedups()
    if arguments.json:
        print(
            json.dumps(
                {
                    "points": [point.to_dict() for point in experiment.rows],
                    "speedups": {str(k): v for k, v in speedups.items()},
                    "acceptance_ok": experiment.acceptance_ok(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if experiment.acceptance_ok() else 1
    print(experiment.report())
    if speedups:
        largest = max(speedups)
        print(
            f"\nlargest table ({largest} prefixes): grouped restoration"
            f" {speedups[largest]:.1f}x faster than per-prefix"
        )
    return 0 if experiment.acceptance_ok() else 1


def _cmd_scenarios_list(arguments: argparse.Namespace) -> int:
    rows = []
    for name in preset_names():
        spec = get_preset(name)
        failures = ",".join(f.kind for f in spec.failures) or "-"
        rows.append(
            [
                name,
                str(spec.num_providers),
                str(spec.num_edge_routers),
                "yes" if spec.supercharged else "no",
                "yes" if spec.redundant_controllers else "no",
                failures,
            ]
        )
    print(format_table(
        ["preset", "providers", "edges", "SC", "redundant", "failures"], rows
    ))
    return 0


def _scenario_overrides(arguments: argparse.Namespace) -> dict:
    overrides = {"seed": arguments.seed}
    if arguments.prefixes is not None:
        overrides["num_prefixes"] = arguments.prefixes
    if arguments.flows is not None:
        overrides["monitored_flows"] = arguments.flows
    if getattr(arguments, "providers", None) is not None:
        overrides["num_providers"] = arguments.providers
        overrides["provider_names"] = None
        overrides["provider_local_prefs"] = None
    return overrides


def _cmd_scenarios_run(arguments: argparse.Namespace) -> int:
    spec = get_preset(arguments.preset, **_scenario_overrides(arguments))
    record = run_scenario(spec, timeout=arguments.timeout)
    detection = (
        f"{record['detection_ms']:8.1f} ms"
        if record["detection_ms"] is not None
        else "       -"
    )
    mode = "supercharged" if record["supercharged"] else "standalone"
    print(
        f"scenario {record['name']} ({mode}, {record['num_providers']} providers,"
        f" {record['num_prefixes']} prefixes, seed {record['seed']})"
    )
    print(f"  failures          : {', '.join(record['failures']) or 'none'}")
    print(f"  failure detection : {detection}")
    print(f"  median convergence: {record['median_ms']:8.1f} ms")
    print(f"  max convergence   : {record['max_ms']:8.1f} ms")
    print(f"  converged/recovered: {record['converged']}/{record['recovered']}")
    return 0 if record["converged"] and record["recovered"] else 1


def _cmd_scenarios_sweep(arguments: argparse.Namespace) -> int:
    if arguments.random:
        specs = random_fan_specs(
            arguments.random,
            seed=arguments.seed,
            monitored_flows=arguments.flows if arguments.flows is not None else 20,
        )
        if arguments.prefixes is not None:
            specs = [
                s.with_overrides(num_prefixes=arguments.prefixes).validate()
                for s in specs
            ]
    else:
        base = get_preset(
            arguments.preset,
            seed=arguments.seed,
            **(
                {"monitored_flows": arguments.flows}
                if arguments.flows is not None
                else {}
            ),
        )
        grid = {}
        if arguments.providers:
            grid["num_providers"] = arguments.providers
        if arguments.prefixes_grid:
            grid["num_prefixes"] = arguments.prefixes_grid
        if arguments.failures:
            grid["failure"] = arguments.failures
        if arguments.churn_rates:
            grid["churn_rate_ups"] = arguments.churn_rates
        if arguments.churn_withdraws:
            grid["churn_withdraw_fraction"] = arguments.churn_withdraws
        if arguments.remote_groups:
            grid["remote_groups"] = [value == "on" for value in arguments.remote_groups]
        if not grid:
            grid["failure"] = ["link_down"]
        specs = expand_grid(base, grid)
    runner = CampaignRunner(specs, workers=arguments.workers, timeout=arguments.timeout)
    result = runner.run()
    print(result.table())
    aggregate = result.aggregate()
    print(
        f"\n{aggregate['scenarios']} scenarios, workers={arguments.workers},"
        f" {result.wall_seconds:.1f}s wall"
        f" ({result.throughput:.2f} scenarios/s),"
        f" worst max {aggregate['worst_max_ms']:.1f} ms"
    )
    if arguments.output:
        result.write(arguments.output)
        print(f"report written to {arguments.output}")
    return 0 if aggregate["all_converged"] and aggregate["all_recovered"] else 1


def _cmd_metrics(arguments: argparse.Namespace) -> int:
    """Paper-style stage breakdown (detect → decide → push → install) for a
    preset campaign, computed from the sim-time telemetry subsystem."""
    base = get_preset(arguments.preset, **_scenario_overrides(arguments))
    if arguments.openmetrics:
        # Single-scenario OpenMetrics exposition: run the preset once and
        # render the registry in the Prometheus text format.
        spec = base
        if arguments.failures:
            spec = expand_grid(base, {"failure": [arguments.failures[0]]})[0]
        if not spec.telemetry:
            spec = spec.with_overrides(telemetry=True).validate()
        record, lab = execute_scenario(spec, timeout=arguments.timeout)
        assert lab.telemetry is not None
        print(render_openmetrics(lab.telemetry.metrics), end="")
        return 0 if record["converged"] and record["recovered"] else 1
    grid = {}
    if arguments.failures:
        grid["failure"] = arguments.failures
    if arguments.prefixes_grid:
        grid["num_prefixes"] = arguments.prefixes_grid
    if not grid:
        grid["failure"] = ["link_down"]
    specs = expand_grid(base, grid)
    runner = CampaignRunner(specs, workers=arguments.workers, timeout=arguments.timeout)
    result = runner.run()
    aggregate = result.aggregate()
    # Scale summary alongside stage timings: table sizes from the
    # deterministic records, peak RSS from the process gauge.  Kept out
    # of ``aggregate()`` so written reports stay byte-identical across
    # serial/pooled/rerun.
    scale = {
        "rib_prefixes": sum(row["num_prefixes"] for row in result.scenarios),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if arguments.json:
        print(json.dumps(dict(aggregate, scale=scale), indent=2, sort_keys=True))
    else:
        print(result.stage_table())
        print()
        print(result.stage_summary())
        print()
        print(
            f"scale: {scale['rib_prefixes']} prefixes across"
            f" {len(result.scenarios)} scenarios,"
            f" peak rss {scale['peak_rss_mb']:.1f} MiB"
        )
    return 0 if aggregate["all_converged"] and aggregate["all_recovered"] else 1


def _cmd_report(arguments: argparse.Namespace) -> int:
    """Causal convergence provenance report: per-prefix restoration chains,
    stage waterfall and restoration CDF, written as JSON + HTML artifacts."""
    base = get_preset(arguments.preset, **_scenario_overrides(arguments))
    if arguments.failures:
        specs = expand_grid(base, {"failure": arguments.failures})
    else:
        specs = [base]
    entries = []
    healthy = True
    for spec in specs:
        if not spec.telemetry:
            spec = spec.with_overrides(telemetry=True).validate()
        record, lab = execute_scenario(spec, timeout=arguments.timeout)
        healthy = healthy and record["converged"] and record["recovered"]
        telemetry = lab.telemetry
        assert telemetry is not None
        outages = telemetry.causal.outages()
        first = outages[0].outage_id if outages else None
        entries.append(
            {
                "record": record,
                "outages": telemetry.ledger.outage_summaries(),
                "chains": telemetry.ledger.chains(),
                "restoration_cdf": telemetry.ledger.restoration_cdf(first),
                "profile": (
                    lab.profiler.to_dict() if lab.profiler is not None else None
                ),
            }
        )
    report = build_campaign_report(
        entries, title=f"Convergence provenance: {arguments.preset}"
    )
    if arguments.json:
        print(report_to_json(report), end="")
        return 0 if healthy else 1
    json_path = f"{arguments.out}.json"
    html_path = f"{arguments.out}.html"
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(report_to_json(report))
    with open(html_path, "w", encoding="utf-8") as handle:
        handle.write(render_report_html(report))
    print(
        f"provenance report: {report['scenario_count']} scenario(s),"
        f" {report['total_chains']} chain(s)"
        f" ({report['total_prefix_chains']} per-prefix)"
    )
    for entry in entries:
        record = entry["record"]
        deciles = record.get("restoration_cdf_ms") or []
        if deciles:
            cdf = (
                f"restoration p0/p50/p100 = {deciles[0]:.1f}"
                f"/{deciles[5]:.1f}/{deciles[10]:.1f} ms"
            )
        else:
            cdf = "no restoration chains"
        prefix_chains = sum(
            outage["prefixes_restored"] for outage in entry["outages"]
        )
        print(
            f"  {record['name']}/{','.join(record['failures']) or 'none'}"
            f" seed={record['seed']}: {prefix_chains} prefix chain(s), {cdf}"
        )
    print(f"report written to {json_path} and {html_path}")
    return 0 if healthy else 1


def _cmd_trace(arguments: argparse.Namespace) -> int:
    """Dump the structured sim-time trace of one scenario run."""
    spec = get_preset(arguments.preset, **_scenario_overrides(arguments))
    if not spec.telemetry:
        spec = spec.with_overrides(telemetry=True).validate()
    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as sink:
            record, lab = execute_scenario(
                spec, timeout=arguments.timeout, trace_sink=sink
            )
    else:
        record, lab = execute_scenario(spec, timeout=arguments.timeout)
    events = lab.telemetry.trace.events(name=arguments.event or None)
    if arguments.limit is not None:
        events = events[-arguments.limit:]
    if arguments.json:
        print(
            json.dumps(
                {
                    "scenario": record["name"],
                    "emitted": lab.telemetry.trace.emitted,
                    "events": [event.to_dict() for event in events],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"trace of {record['name']}: {lab.telemetry.trace.emitted} events"
            f" emitted, showing {len(events)}"
        )
        for event in events:
            fields = " ".join(
                f"{key}={value}" for key, value in sorted(event.fields.items())
            )
            print(f"  {event.at * 1e3:12.3f} ms  {event.name:<24} {fields}")
        if arguments.out:
            print(
                f"{lab.telemetry.trace.emitted} events written to {arguments.out}"
            )
    return 0 if record["converged"] and record["recovered"] else 1


def _cmd_lint(arguments: argparse.Namespace) -> int:
    """Run the determinism linter (see docs/static_analysis.md).

    Exit status gates CI: 0 only when every finding is baselined (or
    none exist); ``--write-baseline`` regenerates the grandfather list
    instead of gating.
    """
    if arguments.list_rules:
        for code in ALL_RULES:
            print(f"{code}  {RULES_BY_CODE[code].SUMMARY}")
        return 0
    config = LintConfig.default()
    if arguments.rules:
        config = config.select(arguments.rules)
    baseline = None
    if not arguments.no_baseline:
        baseline = Baseline.load(arguments.baseline)
    report = lint_paths(arguments.paths, config=config, baseline=baseline)
    if arguments.write_baseline:
        Baseline.from_findings(report.all_findings).save(arguments.baseline)
        print(
            f"baseline written to {arguments.baseline}:"
            f" {len(report.all_findings)} finding(s) grandfathered"
        )
        return 0
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _add_seed_option(parser: argparse.ArgumentParser) -> None:
    # SUPPRESS keeps the top-level --seed value when the sub-command omits
    # it, while still accepting `repro <command> --seed N`.
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="simulation seed"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Supercharged-router reproduction experiments"
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    commands = parser.add_subparsers(dest="command", required=True)

    failover = commands.add_parser("failover", help="run one failover experiment")
    failover.add_argument("--prefixes", type=int, default=1_000)
    failover.add_argument("--flows", type=int, default=50)
    failover.add_argument("--supercharged", action="store_true")
    _add_seed_option(failover)
    failover.set_defaults(handler=_cmd_failover)

    figure5 = commands.add_parser("figure5", help="regenerate Figure 5")
    figure5.add_argument("--prefixes", type=int, nargs="*", default=None)
    figure5.add_argument("--repetitions", type=int, default=3)
    figure5.add_argument("--flows", type=int, default=100)
    _add_seed_option(figure5)
    figure5.set_defaults(handler=_cmd_figure5)

    microbench = commands.add_parser("microbench", help="controller processing benchmark")
    microbench.add_argument("--updates", type=int, default=50_000)
    _add_seed_option(microbench)
    microbench.set_defaults(handler=_cmd_microbench)

    groups = commands.add_parser("groups", help="backup-group count analysis")
    groups.add_argument("--peers", type=int, nargs="+", default=[2, 3, 5, 10])
    groups.add_argument("--prefixes", type=int, default=2_000)
    _add_seed_option(groups)
    groups.set_defaults(handler=_cmd_groups)

    ablations = commands.add_parser("ablations", help="compare FIB organisations")
    ablations.add_argument("--prefixes", type=int, default=2_000)
    ablations.add_argument("--flows", type=int, default=20)
    _add_seed_option(ablations)
    ablations.set_defaults(handler=_cmd_ablations)

    detection = commands.add_parser(
        "detection",
        help="BFD-vs-BGP detection-time split for local vs remote faults",
    )
    detection.add_argument("--prefixes", type=int, default=1_000)
    detection.add_argument("--flows", type=int, default=20)
    detection.add_argument("--fraction", type=float, default=1.0,
                           help="share of the provider table a remote fault hits")
    detection.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of the report")
    _add_seed_option(detection)
    detection.set_defaults(handler=_cmd_detection)

    remote = commands.add_parser(
        "remote-supercharge",
        help="grouped vs per-prefix convergence for full-table remote withdraws",
    )
    remote.add_argument("--prefixes", type=int, nargs="*",
                        default=list(REMOTE_PREFIX_COUNTS),
                        help="prefix-table sizes of the curve")
    remote.add_argument("--flows", type=int, default=12)
    remote.add_argument("--providers", type=int, default=2)
    remote.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of the report")
    _add_seed_option(remote)
    remote.set_defaults(handler=_cmd_remote_supercharge)

    metrics = commands.add_parser(
        "metrics",
        help="per-stage convergence breakdown (detect/decide/push/install)"
             " for a preset campaign",
    )
    metrics.add_argument("--preset", default="figure4", choices=preset_names())
    metrics.add_argument("--prefixes", type=int, default=None)
    metrics.add_argument("--flows", type=int, default=None)
    metrics.add_argument("--providers", type=int, default=None)
    metrics.add_argument("--prefixes-grid", type=int, nargs="*", default=None,
                         help="grid: prefix-table sizes")
    metrics.add_argument("--failures", nargs="*", default=None,
                         help="grid: failure campaigns (default: link_down)")
    metrics.add_argument("--workers", type=int, default=1)
    metrics.add_argument("--timeout", type=float, default=600.0)
    metrics.add_argument("--json", action="store_true",
                         help="emit the aggregate report (incl. stage"
                              " histograms) as JSON")
    metrics.add_argument("--openmetrics", action="store_true",
                         help="run the preset once and print its metrics"
                              " registry in OpenMetrics text format")
    _add_seed_option(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    report = commands.add_parser(
        "report",
        help="causal provenance report: per-prefix restoration chains,"
             " stage waterfall and CDF as JSON + HTML",
    )
    report.add_argument("--preset", default="remote-withdraw",
                        choices=preset_names())
    report.add_argument("--prefixes", type=int, default=None)
    report.add_argument("--flows", type=int, default=None)
    report.add_argument("--providers", type=int, default=None)
    report.add_argument("--failures", nargs="*", default=None,
                        help="grid: failure campaigns (default: the preset's"
                             " own failure schedule)")
    report.add_argument("--out", default="campaign_report",
                        help="artifact base path; writes <out>.json and"
                             " <out>.html (default: campaign_report)")
    report.add_argument("--timeout", type=float, default=600.0)
    report.add_argument("--json", action="store_true",
                        help="print the JSON report to stdout instead of"
                             " writing artifacts")
    _add_seed_option(report)
    report.set_defaults(handler=_cmd_report)

    trace = commands.add_parser(
        "trace", help="dump the structured sim-time trace of one scenario"
    )
    trace.add_argument("--preset", default="figure4", choices=preset_names())
    trace.add_argument("--prefixes", type=int, default=None)
    trace.add_argument("--flows", type=int, default=None)
    trace.add_argument("--providers", type=int, default=None)
    trace.add_argument("--event", default=None,
                       help="only show events with this exact name")
    trace.add_argument("--limit", type=int, default=None,
                       help="show only the last N matching events")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="stream every emitted event to FILE as JSONL"
                            " (not bounded by the ring capacity)")
    trace.add_argument("--timeout", type=float, default=600.0)
    trace.add_argument("--json", action="store_true",
                       help="emit the trace as JSON")
    _add_seed_option(trace)
    trace.set_defaults(handler=_cmd_trace)

    lint = commands.add_parser(
        "lint",
        help="determinism linter: AST sim-purity analysis (DET001-DET006)",
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--rules", nargs="*", default=None, metavar="DET00N",
                      help="run only these rules")
    lint.add_argument("--baseline", default="detlint_baseline.json",
                      help="grandfathered-findings file (default:"
                           " detlint_baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record the current findings as the new baseline")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    lint.set_defaults(handler=_cmd_lint)

    scenarios = commands.add_parser("scenarios", help="declarative scenario engine")
    scenario_commands = scenarios.add_subparsers(dest="scenario_command", required=True)

    listing = scenario_commands.add_parser("list", help="list scenario presets")
    _add_seed_option(listing)
    listing.set_defaults(handler=_cmd_scenarios_list)

    run = scenario_commands.add_parser("run", help="run one scenario preset")
    run.add_argument("--preset", default="figure4", choices=preset_names())
    run.add_argument("--prefixes", type=int, default=None)
    run.add_argument("--flows", type=int, default=None)
    run.add_argument("--providers", type=int, default=None)
    run.add_argument("--timeout", type=float, default=600.0)
    _add_seed_option(run)
    run.set_defaults(handler=_cmd_scenarios_run)

    sweep = scenario_commands.add_parser(
        "sweep", help="run a parameter-grid campaign on a worker pool"
    )
    sweep.add_argument("--preset", default="figure4", choices=preset_names())
    sweep.add_argument("--providers", type=int, nargs="*", default=None,
                       help="grid: provider counts")
    sweep.add_argument("--prefixes-grid", type=int, nargs="*", default=None,
                       help="grid: prefix-table sizes")
    sweep.add_argument("--failures", nargs="*", default=None,
                       help="grid: failure campaigns (link_down, link_flap, "
                            "bfd_loss, session_reset, controller_crash, "
                            "remote_withdraw, remote_nexthop_shift, none)")
    sweep.add_argument("--churn-rates", type=float, nargs="*", default=None,
                       help="grid: RIS churn replay speeds (updates/s, 0 = off)")
    sweep.add_argument("--churn-withdraws", type=float, nargs="*", default=None,
                       help="grid: churn withdraw mix (fraction of prefixes)")
    sweep.add_argument("--remote-groups", nargs="*", choices=["on", "off"],
                       default=None,
                       help="grid: shared-fate remote-group planning (on/off)")
    sweep.add_argument("--random", type=int, default=0,
                       help="run N randomized ISP-like scenarios instead of a grid")
    sweep.add_argument("--prefixes", type=int, default=None,
                       help="fixed prefix-table size (random mode)")
    sweep.add_argument("--flows", type=int, default=None)
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--timeout", type=float, default=600.0)
    sweep.add_argument("--output", default=None, help="write the JSON report here")
    _add_seed_option(sweep)
    sweep.set_defaults(handler=_cmd_scenarios_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ScenarioSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
